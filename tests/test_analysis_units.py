"""Dimensional lint: rule units on synthetic sources + the real tree.

Each UNIT4xx rule gets known-bad snippets asserting the exact code and
line, plus negative cases proving the conservative inference stays
silent on legitimate code (conversion factors, dimensionless math).
The integration test asserts the real ``src/repro`` tree is clean
modulo the checked-in baseline — the property the blocking CI job
enforces.
"""

import textwrap
from pathlib import Path

from repro.analysis.units_lint import (
    dimension_of_name,
    infer_dimension,
    lint_source,
    lint_tree,
    rules_for,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
REPO_SRC = REPO_ROOT / "src" / "repro"


def _diags(source, relpath="perf/example.py"):
    return lint_source(textwrap.dedent(source), relpath)


def _codes(source, relpath="perf/example.py"):
    return [d.code for d in _diags(source, relpath)]


def _lines(source, relpath="perf/example.py"):
    return [int(d.location.rsplit(":", 1)[1])
            for d in _diags(source, relpath)]


class TestDimensionOfName:
    def test_time_suffixes(self):
        assert dimension_of_name("decode_step_s") == "time[s]"
        assert dimension_of_name("latency_ns") == "time[ns]"
        assert dimension_of_name("wait_us") == "time[us]"
        assert dimension_of_name("ttft_ms") == "time[ms]"

    def test_byte_suffixes_distinguish_scales(self):
        assert dimension_of_name("mem_bytes") == "bytes"
        assert dimension_of_name("capacity_gb") == "bytes[gb]"
        assert dimension_of_name("footprint_gib") == "bytes[gib]"

    def test_rate_names(self):
        assert dimension_of_name("goodput_tokens_per_s") \
            == "tokens/time[s]"
        assert dimension_of_name("cost_usd_per_kwh") \
            == "money[usd]/energy[kwh]"

    def test_single_tokens_never_match_suffixes(self):
        # A loop variable ``j`` or a bare ``s`` must not acquire a
        # dimension by accident; only whole-name entries match.
        assert dimension_of_name("s") is None
        assert dimension_of_name("j") is None
        assert dimension_of_name("gb") is None
        assert dimension_of_name("seconds") == "time[s]"
        assert dimension_of_name("nbytes") == "bytes"

    def test_undimensioned_names(self):
        assert dimension_of_name("batch") is None
        assert dimension_of_name("batch_size") is None


class TestInferDimension:
    def test_multiplication_erases(self):
        import ast
        expr = ast.parse("wait_s * scale_bytes", mode="eval").body
        assert infer_dimension(expr) is None

    def test_addition_preserves_agreeing_dims(self):
        import ast
        expr = ast.parse("wait_s + queue_s", mode="eval").body
        assert infer_dimension(expr) == "time[s]"

    def test_min_max_propagate(self):
        import ast
        expr = ast.parse("max(wait_s, queue_s)", mode="eval").body
        assert infer_dimension(expr) == "time[s]"


class TestRuleSelection:
    def test_magnitude_rule_scoped_to_timing_packages(self):
        assert "UNIT403" in rules_for("perf/analytical.py")
        assert "UNIT403" in rules_for("tco/cost.py")
        assert "UNIT403" in rules_for("cxl/link.py")
        assert "UNIT403" not in rules_for("obs/tracer.py")
        assert "UNIT403" not in rules_for("cli.py")

    def test_mixing_rules_everywhere(self):
        for rel in ("perf/analytical.py", "llm/kvcache.py", "cli.py"):
            assert "UNIT401" in rules_for(rel)
            assert "UNIT402" in rules_for(rel)


class TestUnit401MixedArithmetic:
    def test_seconds_plus_bytes(self):
        src = """
        def total(queue_s, mem_bytes):
            return queue_s + mem_bytes
        """
        assert _codes(src) == ["UNIT401"]

    def test_exact_line(self):
        src = (
            "def f(a_s, b_bytes):\n"
            "    x = 1\n"
            "    y = a_s + b_bytes\n"
        )
        diags = lint_source(src, "perf/example.py")
        assert [d.code for d in diags] == ["UNIT401"]
        assert diags[0].location == "perf/example.py:3"

    def test_seconds_plus_nanoseconds_without_factor(self):
        src = """
        def skew(start_s, start_ns):
            return start_s - start_ns
        """
        codes = _codes(src)
        assert "UNIT401" in codes

    def test_nanoseconds_via_conversion_factor_clean(self):
        src = """
        NANOSECOND = 1.0
        def skew(start_s, start_ns):
            return start_s - start_ns * NANOSECOND
        """
        assert "UNIT401" not in _codes(src, "llm/example.py")

    def test_comparison_across_dimensions(self):
        src = """
        def check(deadline_s, used_bytes):
            return deadline_s < used_bytes
        """
        assert _codes(src) == ["UNIT401"]

    def test_augmented_assignment(self):
        src = """
        def accumulate(total_s, delta_bytes):
            total_s += delta_bytes
            return total_s
        """
        assert _codes(src) == ["UNIT401"]

    def test_same_dimension_clean(self):
        src = """
        def total(queue_s, service_s, deadline_s):
            both_s = queue_s + service_s
            return both_s < deadline_s
        """
        assert _codes(src) == []


class TestUnit402UnitDropping:
    def test_assignment_drops_units(self):
        src = """
        def f(op):
            total_s = op.total_bytes
            return total_s
        """
        diags = _diags(src)
        assert [d.code for d in diags] == ["UNIT402"]
        assert "total_s" in diags[0].message

    def test_annotated_assignment(self):
        src = """
        def f(op):
            total_s: float = op.total_bytes
            return total_s
        """
        assert _codes(src) == ["UNIT402"]

    def test_return_contradicts_function_name(self):
        src = """
        class Timer:
            def decode_step_s(self):
                return self.mem_bytes
        """
        diags = _diags(src)
        assert [d.code for d in diags] == ["UNIT402"]
        assert "decode_step_s" in diags[0].message

    def test_lambda_masks_enclosing_function_name(self):
        src = """
        def decode_step_s(items):
            key = lambda r: r.mem_bytes
            return sorted(items, key=key)[0].step_s
        """
        assert _codes(src) == []

    def test_matching_dimensions_clean(self):
        src = """
        def f(op):
            total_s = op.queue_s
            return total_s
        """
        assert _codes(src) == []

    def test_conversion_through_division_clean(self):
        src = """
        GB = 10**9
        def footprint_gb(mem_bytes):
            return mem_bytes / GB
        """
        assert _codes(src, "llm/example.py") == []


class TestUnit403BareMagnitudes:
    def test_1e9_flagged_with_suggestion(self):
        src = """
        def bandwidth(rate):
            return rate / 1e9
        """
        diags = _diags(src)
        assert [d.code for d in diags] == ["UNIT403"]
        assert "GIGA / GB / Gbps / GHZ" in diags[0].message

    def test_power_of_ten_expression(self):
        src = """
        def cap():
            return 10**12
        """
        diags = _diags(src, "tco/example.py")
        assert [d.code for d in diags] == ["UNIT403"]
        # The Pow literal is one finding, not two operand findings.
        assert len(diags) == 1

    def test_negative_exponent(self):
        src = """
        def tick():
            return 10**-9
        """
        assert _codes(src, "cxl/example.py") == ["UNIT403"]

    def test_power_of_two_magnitudes(self):
        src = """
        def cap():
            return 4.0 * 2**30
        """
        assert _codes(src) == ["UNIT403"]

    def test_exact_line(self):
        src = (
            "X = 1\n"
            "Y = 2\n"
            "Z = 1e9\n"
        )
        diags = lint_source(src, "perf/example.py")
        assert [(d.code, d.location) for d in diags] \
            == [("UNIT403", "perf/example.py:3")]

    def test_small_literals_clean(self):
        src = """
        def f(x):
            return x * 2.0 + 0.5 - 100
        """
        assert _codes(src) == []

    def test_out_of_scope_package_clean(self):
        src = """
        def bandwidth(rate):
            return rate / 1e9
        """
        assert _codes(src, "obs/example.py") == []

    def test_int_1000_not_flagged(self):
        # Only float spellings (1e3) and Pow expressions are banned;
        # a plain int 1000 is a count more often than a magnitude.
        src = """
        def f(x):
            return x * 1000
        """
        assert _codes(src) == []


class TestSyntaxError:
    def test_unparsable_source_reports_unit400(self):
        diags = lint_source("def f(:\n", "perf/example.py")
        assert [d.code for d in diags] == ["UNIT400"]


class TestRealTree:
    def test_tree_clean_modulo_baseline(self):
        from repro.analysis.baseline import Baseline
        report = lint_tree(REPO_SRC)
        baseline = Baseline.load(
            REPO_ROOT / "tools" / "static_analysis_baseline.json")
        result = baseline.apply(report, REPO_SRC)
        assert result.report.clean, result.report.render()

    def test_known_exception_is_the_roofline_grid_bound(self):
        report = lint_tree(REPO_SRC)
        locations = [d.location for d in report.diagnostics]
        assert all(loc.startswith("perf/roofline.py")
                   for loc in locations), locations
