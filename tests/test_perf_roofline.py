"""Roofline analysis: ceilings, ridge points, stage placement."""

import pytest
from hypothesis import given, strategies as st

from repro.accelerator import CXLPNMDevice
from repro.errors import ConfigurationError
from repro.gpu import A100_40G
from repro.llm import OPT_13B
from repro.llm.graph import gen_stage_ops
from repro.perf.analytical import GpuPerfModel, PnmPerfModel
from repro.perf.roofline import (
    Roofline,
    device_roofline,
    log_intensity_grid,
    op_scatter,
    roofline_report,
    stage_intensity,
)


@pytest.fixture(scope="module")
def pnm_roof():
    return device_roofline(PnmPerfModel(CXLPNMDevice()))


@pytest.fixture(scope="module")
def gpu_roof():
    return device_roofline(GpuPerfModel(A100_40G))


class TestRoofline:
    def test_ridge_points(self, pnm_roof, gpu_roof):
        # A100: 312T / 1.555T ~ 200 FLOPs/B; CXL-PNM: 8.2T / 1.088T ~ 7.5.
        assert gpu_roof.ridge_intensity == pytest.approx(200, rel=0.1)
        assert pnm_roof.ridge_intensity == pytest.approx(7.5, rel=0.1)

    def test_attainable_clamps_at_peak(self, gpu_roof):
        assert gpu_roof.attainable_flops(1e9) == gpu_roof.peak_flops

    def test_attainable_linear_below_ridge(self, gpu_roof):
        assert gpu_roof.attainable_flops(1.0) == pytest.approx(
            gpu_roof.peak_bandwidth)

    def test_bound_classification(self, pnm_roof):
        assert pnm_roof.bound_of(1.0) == "memory"
        assert pnm_roof.bound_of(100.0) == "compute"

    def test_curve_monotone(self, pnm_roof):
        curve = pnm_roof.curve(log_intensity_grid())
        values = [p["attainable_tflops"] for p in curve]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Roofline(name="x", peak_flops=0, peak_bandwidth=1)
        with pytest.raises(ConfigurationError):
            log_intensity_grid(lo=0)

    @given(st.floats(0.0, 1e6))
    def test_attainable_never_exceeds_peak(self, intensity):
        roof = Roofline(name="h", peak_flops=1e12, peak_bandwidth=1e11)
        assert roof.attainable_flops(intensity) <= roof.peak_flops


class TestStagePlacement:
    def test_gen_stage_is_memory_bound_everywhere(self):
        """The paper's core roofline fact: gen-stage intensity ~1 FLOP/B,
        below both devices' ridge points."""
        intensity = stage_intensity(OPT_13B, 576)
        assert intensity < 2.0
        report = roofline_report(OPT_13B, [GpuPerfModel(A100_40G),
                                           PnmPerfModel(CXLPNMDevice())])
        assert all(row["gen_bound"] == "memory" for row in report)

    def test_sum_stage_compute_bound_on_pnm_only(self):
        """At L_in = 64, the sum stage exceeds CXL-PNM's ridge but not
        the A100's — why the GPU keeps a small edge on Fig. 10."""
        report = roofline_report(OPT_13B, [GpuPerfModel(A100_40G),
                                           PnmPerfModel(CXLPNMDevice())])
        by_device = {row["device"]: row for row in report}
        assert by_device["CXL-PNM"]["sum_bound"] == "compute"
        assert by_device["A100-40G"]["sum_bound"] == "memory"

    def test_gen_attainable_tracks_bandwidth_ratio(self):
        report = roofline_report(OPT_13B, [GpuPerfModel(A100_40G),
                                           PnmPerfModel(CXLPNMDevice())])
        by_device = {row["device"]: row for row in report}
        ratio = by_device["A100-40G"]["gen_attainable_tflops"] \
            / by_device["CXL-PNM"]["gen_attainable_tflops"]
        assert ratio == pytest.approx(1.555 / 1.088, rel=0.02)

    def test_op_scatter_classifies_all_ops(self):
        roof = device_roofline(PnmPerfModel(CXLPNMDevice()))
        rows = op_scatter(gen_stage_ops(OPT_13B, 576), roof)
        assert len(rows) == len(gen_stage_ops(OPT_13B, 576))
        assert all(row["bound"] in ("memory", "compute") for row in rows)
        matmuls = [r for r in rows if r["kind"] in ("gemv", "gemm")]
        assert all(r["bound"] == "memory" for r in matmuls)
