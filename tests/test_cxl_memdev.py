"""Functional CXL device: transaction-level load/store into real memory."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accelerator import ControlRegister, DeviceMemory
from repro.cxl import Opcode, Source, Transaction
from repro.cxl.memdev import FunctionalCxlDevice
from repro.errors import AddressError, ProtocolError
from repro.units import MiB


@pytest.fixture()
def device():
    return FunctionalCxlDevice(DeviceMemory(4 * MiB))


class TestLineAccess:
    def test_write_then_read_line(self, device):
        data = np.arange(64, dtype=np.uint8)
        txn = Transaction(opcode=Opcode.MEM_WR, addr=128)
        resp = device.write_line(txn, data)
        assert resp.opcode is Opcode.CMP
        read = device.submit(Transaction(opcode=Opcode.MEM_RD, addr=128))
        assert read.opcode is Opcode.MEM_RD_DATA
        np.testing.assert_array_equal(read.payload, data)

    def test_tags_preserved(self, device):
        txn = Transaction(opcode=Opcode.MEM_RD, addr=0)
        assert device.submit(txn).tag == txn.tag

    def test_wrong_payload_size_rejected(self, device):
        txn = Transaction(opcode=Opcode.MEM_WR, addr=0)
        with pytest.raises(ProtocolError):
            device.write_line(txn, np.zeros(32, dtype=np.uint8))

    def test_memwr_through_submit_rejected(self, device):
        with pytest.raises(ProtocolError):
            device.submit(Transaction(opcode=Opcode.MEM_WR, addr=0))

    def test_out_of_range_line(self, device):
        end = device.memory.capacity
        with pytest.raises(AddressError):
            device.submit(Transaction(opcode=Opcode.MEM_RD, addr=end))

    def test_counters_track_sources(self, device):
        device.submit(Transaction(opcode=Opcode.MEM_RD, addr=0,
                                  source=Source.PNM))
        device.submit(Transaction(opcode=Opcode.MEM_RD, addr=0,
                                  source=Source.HOST))
        assert device.counters.reads[Source.PNM] == 1
        assert device.counters.bytes_read(Source.HOST) == 64


class TestConfigSpace:
    def test_cfg_roundtrip(self, device):
        device.cfg_write(ControlRegister.NUM_LAYERS, 24)
        assert device.cfg_read(ControlRegister.NUM_LAYERS) == 24

    def test_cfg_transactions_rejected_on_mem_path(self, device):
        with pytest.raises(ProtocolError):
            device.submit(Transaction(opcode=Opcode.CFG_RD, addr=0, size=4))


class TestTensorPath:
    def test_tensor_roundtrip_over_cxl_mem(self, device):
        tensor = np.random.default_rng(0).standard_normal((7, 9)).astype(
            np.float32)
        issued = device.host_store_tensor(256, tensor)
        assert issued == -(-tensor.nbytes // 64)
        back = device.host_load_tensor(256, (7, 9))
        np.testing.assert_array_equal(back, tensor)

    def test_host_writes_visible_to_accelerator_memory(self, device):
        """The CXL.mem promise: host stores land in the same memory the
        accelerator computes on — no staging copies."""
        tensor = np.ones((16,), dtype=np.float32)
        region = device.memory.alloc_tensor("x", (16,))
        device.host_store_tensor(region.addr, tensor)
        np.testing.assert_array_equal(
            device.memory.read_tensor(region.addr, (16,)), tensor)

    def test_partial_tail_line_preserves_neighbours(self, device):
        # Write a neighbour value just past the tensor tail, then store a
        # non-multiple-of-16 tensor; the neighbour must survive the RMW.
        device.memory.alloc("pad", 256)
        tail_guard = np.full(4, 7.0, dtype=np.float32)
        device.memory.write_tensor(5 * 4 + 0, tail_guard)  # bytes 20..36
        tensor = np.arange(5, dtype=np.float32)            # bytes 0..20
        device.host_store_tensor(0, tensor)
        np.testing.assert_array_equal(
            device.memory.read_tensor(0, (5,)), tensor)
        np.testing.assert_array_equal(
            device.memory.read_tensor(20, (4,)), tail_guard)

    def test_unaligned_tensor_rejected(self, device):
        with pytest.raises(AddressError):
            device.host_store_tensor(10, np.zeros(4, dtype=np.float32))

    def test_transfer_time_positive(self, device):
        assert device.host_transfer_time(1 << 20) > 0

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.floats(-1e3, 1e3, width=32), min_size=1,
                    max_size=100))
    def test_roundtrip_property(self, values):
        device = FunctionalCxlDevice(DeviceMemory(1 * MiB))
        tensor = np.array(values, dtype=np.float32)
        device.host_store_tensor(0, tensor)
        back = device.host_load_tensor(0, tensor.shape)
        np.testing.assert_array_equal(back, tensor)
