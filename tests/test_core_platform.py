"""The repro.core platform facade."""

import pytest

from repro.appliance import ParallelismPlan
from repro.core import CxlPnmPlatform
from repro.errors import CapacityError
from repro.llm import OPT_13B, OPT_175B, OPT_66B, tiny_config

#: ~700 GB of FP16 parameters: larger than one 512 GB module.
OVERSIZED = OPT_175B.scaled("OPT-350B", num_layers=192)


@pytest.fixture(scope="module")
def platform():
    return CxlPnmPlatform()


class TestReport:
    def test_report_matches_paper_headline(self, platform):
        report = platform.report()
        assert report.memory_capacity_gb == pytest.approx(512.0)
        assert report.peak_bandwidth_tb_s == pytest.approx(1.088)
        assert report.peak_gemm_tflops == pytest.approx(4.096)
        assert report.platform_max_watts == 150.0

    def test_report_dict_roundtrip(self, platform):
        d = platform.report().as_dict()
        assert set(d) == {
            "memory_capacity_gb", "peak_bandwidth_tb_s",
            "effective_bandwidth_tb_s", "peak_gemm_tflops",
            "peak_gemv_tflops", "platform_max_watts"}


class TestCapacity:
    def test_opt66b_and_175b_fit_oversized_does_not(self, platform):
        # Even OPT-175B (349 GB) fits the 512 GB module -- the paper's
        # capacity headline; a ~700 GB model does not.
        assert platform.fits(OPT_66B)
        assert platform.fits(OPT_175B)
        assert not platform.fits(OVERSIZED)

    def test_estimate_rejects_oversized(self, platform):
        with pytest.raises(CapacityError):
            platform.estimate(OVERSIZED, 64, 64)


class TestFunctionalFace:
    def test_session_from_config(self, platform):
        session = platform.session(config=tiny_config(), seed=3)
        trace = session.generate([1, 2], 4)
        assert len(trace.tokens) == 4

    def test_session_requires_weights_or_config(self, platform):
        with pytest.raises(CapacityError):
            platform.session()


class TestTensorParallelFace:
    def test_tp_session_matches_reference(self, platform):
        from repro.llm import ReferenceModel, random_weights
        cfg = tiny_config()
        weights = random_weights(cfg, seed=8)
        session = platform.tensor_parallel_session(weights=weights,
                                                   degree=2)
        assert session.generate([5, 6], 4) == \
            ReferenceModel(weights).generate([5, 6], 4)

    def test_tp_session_needs_weights_or_config(self, platform):
        with pytest.raises(CapacityError):
            platform.tensor_parallel_session()


class TestModelledFace:
    def test_estimate_returns_inference_result(self, platform):
        result = platform.estimate(OPT_13B, 64, 128)
        assert result.latency_s > 0
        assert result.device_name == "CXL-PNM"

    def test_estimate_appliance(self, platform):
        result = platform.estimate_appliance(OPT_66B,
                                             ParallelismPlan(8, 1), 64, 64)
        assert result.instances == 8
        assert result.throughput_tokens_per_s > 0
