"""CXL transaction-layer message model."""

import pytest

from repro.cxl import (
    CACHELINE_BYTES,
    Opcode,
    Protocol,
    Source,
    Transaction,
    read_burst,
)
from repro.errors import ProtocolError


class TestOpcodes:
    def test_protocol_routing(self):
        assert Opcode.MEM_RD.protocol is Protocol.MEM
        assert Opcode.CFG_RD.protocol is Protocol.IO
        assert Opcode.CFG_CMP.protocol is Protocol.IO

    def test_request_classification(self):
        assert Opcode.MEM_RD.is_request
        assert Opcode.MEM_WR.is_request
        assert not Opcode.CMP.is_request
        assert not Opcode.MEM_RD_DATA.is_request

    def test_data_carriers(self):
        assert Opcode.MEM_WR.carries_data
        assert Opcode.MEM_RD_DATA.carries_data
        assert not Opcode.MEM_RD.carries_data


class TestTransactionValidation:
    def test_mem_requires_cacheline_alignment(self):
        with pytest.raises(ProtocolError):
            Transaction(opcode=Opcode.MEM_RD, addr=5)

    def test_mem_requires_cacheline_size(self):
        with pytest.raises(ProtocolError):
            Transaction(opcode=Opcode.MEM_RD, addr=0, size=32)

    def test_io_allows_small_unaligned(self):
        txn = Transaction(opcode=Opcode.CFG_RD, addr=0x1003, size=4)
        assert txn.size == 4

    def test_negative_address_rejected(self):
        with pytest.raises(ProtocolError):
            Transaction(opcode=Opcode.CFG_RD, addr=-1, size=4)

    def test_tags_unique(self):
        a = Transaction(opcode=Opcode.MEM_RD, addr=0)
        b = Transaction(opcode=Opcode.MEM_RD, addr=64)
        assert a.tag != b.tag


class TestResponses:
    def test_read_response_carries_data_and_tag(self):
        req = Transaction(opcode=Opcode.MEM_RD, addr=128)
        resp = req.response()
        assert resp.opcode is Opcode.MEM_RD_DATA
        assert resp.tag == req.tag

    def test_write_response_is_completion(self):
        req = Transaction(opcode=Opcode.MEM_WR, addr=128)
        assert req.response().opcode is Opcode.CMP

    def test_cfg_response(self):
        req = Transaction(opcode=Opcode.CFG_WR, addr=12, size=4)
        assert req.response().opcode is Opcode.CFG_CMP

    def test_response_of_response_rejected(self):
        resp = Transaction(opcode=Opcode.MEM_RD, addr=0).response()
        with pytest.raises(ProtocolError):
            resp.response()


class TestReadBurst:
    def test_burst_covers_range(self):
        lines = read_burst(base=100, length=200)
        assert lines[0].addr == 64
        assert lines[-1].addr == 256
        assert len(lines) == 4

    def test_burst_aligned_single_line(self):
        lines = read_burst(base=0, length=CACHELINE_BYTES)
        assert len(lines) == 1

    def test_source_propagates(self):
        lines = read_burst(0, 64, source=Source.PNM)
        assert lines[0].source is Source.PNM

    def test_empty_burst_rejected(self):
        with pytest.raises(ProtocolError):
            read_burst(0, 0)
