"""Cross-representation consistency: op graphs vs compiled programs.

The analytical model consumes op graphs; the simulator consumes compiled
programs.  Their headline quantities (matmul FLOPs, streamed weight
bytes) must agree — otherwise the two timing paths could silently model
different workloads and the §VII validation analog would be meaningless.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.accelerator import isa, timing_program
from repro.llm import OPT_1_3B, tiny_config
from repro.llm.graph import gen_stage_ops, sum_stage_ops


def _program_matmul_flops(program):
    return sum(i.flops() for i in program
               if i.unit in (isa.Unit.PE_ARRAY, isa.Unit.ADDER_TREE))


def _graph_matmul_flops(ops):
    return sum(op.flops for op in ops if op.kind.is_matmul)


def _program_mem_elems(program):
    return sum(i.mem_elems() for i in program)


def _graph_weight_elems(ops, dtype_bytes=2):
    return sum(op.weight_bytes for op in ops) / dtype_bytes


class TestFlopConsistency:
    @pytest.mark.parametrize("config,batch,ctx_prev", [
        (tiny_config(), 1, 7), (tiny_config(), 4, 0),
        (OPT_1_3B, 1, 575), (OPT_1_3B, 64, 0),
    ])
    def test_matmul_flops_match(self, config, batch, ctx_prev):
        program = timing_program(config, batch_tokens=batch,
                                 ctx_prev=ctx_prev)
        if batch == 1:
            ops = gen_stage_ops(config, ctx_prev + 1)
        else:
            ops = sum_stage_ops(config, batch)
        assert _program_matmul_flops(program) == pytest.approx(
            _graph_matmul_flops(ops), rel=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(ctx_prev=st.integers(1, 40))
    def test_gen_flops_match_property(self, ctx_prev):
        config = tiny_config()
        program = timing_program(config, batch_tokens=1, ctx_prev=ctx_prev)
        ops = gen_stage_ops(config, ctx_prev + 1)
        assert _program_matmul_flops(program) == pytest.approx(
            _graph_matmul_flops(ops), rel=1e-6)


class TestTrafficConsistency:
    @pytest.mark.parametrize("ctx_prev", [15, 63, 511])
    def test_gen_stage_memory_traffic_close(self, ctx_prev):
        """Program mem elems (weights + KV + biases + norms + I/O) must
        cover the graph's weight traffic and not exceed it by much."""
        config = OPT_1_3B
        program = timing_program(config, batch_tokens=1, ctx_prev=ctx_prev)
        ops = gen_stage_ops(config, ctx_prev + 1)
        program_elems = _program_mem_elems(program)
        graph_elems = _graph_weight_elems(ops)
        assert program_elems >= graph_elems * 0.98
        assert program_elems <= graph_elems * 1.10

    def test_instruction_count_independent_of_context(self):
        config = tiny_config()
        short = timing_program(config, batch_tokens=1, ctx_prev=3)
        long = timing_program(config, batch_tokens=1, ctx_prev=30)
        assert len(short) == len(long)
