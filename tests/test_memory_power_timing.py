"""Module power model and effective-bandwidth timing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.memory import (
    AccessPattern,
    ChannelTimingModel,
    KV_CACHE_PATTERN,
    RANDOM_CACHELINE,
    SEQUENTIAL_STREAM,
    build_module,
    lpddr5x_module,
)


class TestPowerModel:
    def test_idle_power_is_background_only(self):
        model = lpddr5x_module().power_model
        assert model.power_watts(0.0) == pytest.approx(
            model.background_watts)

    def test_power_monotone_in_utilization(self):
        model = lpddr5x_module().power_model
        powers = [model.power_watts(u) for u in (0.0, 0.25, 0.5, 1.0)]
        assert powers == sorted(powers)

    def test_lpddr_module_near_40w_operating(self):
        # Table II: "DRAM total power ~40 W".
        model = lpddr5x_module().power_model
        assert model.reference_power_watts() == pytest.approx(40.0, rel=0.2)

    def test_bandwidth_beyond_peak_rejected(self):
        model = lpddr5x_module().power_model
        with pytest.raises(ConfigurationError):
            model.dynamic_watts(lpddr5x_module().peak_bandwidth * 1.5)

    def test_bad_utilization_rejected(self):
        with pytest.raises(ConfigurationError):
            lpddr5x_module().power_model.power_watts(1.5)

    def test_energy_combines_background_and_dynamic(self):
        module = lpddr5x_module()
        model = module.power_model
        energy = model.energy_joules(bytes_moved=1e9, elapsed_s=0.5)
        assert energy == pytest.approx(
            model.background_watts * 0.5
            + module.technology.access_energy_joules(1e9))

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ConfigurationError):
            lpddr5x_module().power_model.energy_joules(1.0, -1.0)


class TestTimingModel:
    def test_sequential_stream_near_peak(self):
        timing = ChannelTimingModel(lpddr5x_module())
        eff = timing.efficiency(SEQUENTIAL_STREAM)
        assert 0.90 < eff <= 1.0

    def test_pattern_ordering(self):
        timing = ChannelTimingModel(lpddr5x_module())
        seq = timing.efficiency(SEQUENTIAL_STREAM)
        kv = timing.efficiency(KV_CACHE_PATTERN)
        rand = timing.efficiency(RANDOM_CACHELINE)
        assert seq > kv > rand > 0.0

    def test_transfer_time_inverse_of_bandwidth(self):
        timing = ChannelTimingModel(lpddr5x_module())
        bw = timing.effective_bandwidth(SEQUENTIAL_STREAM)
        assert timing.transfer_time(bw, SEQUENTIAL_STREAM) \
            == pytest.approx(1.0)

    def test_negative_transfer_rejected(self):
        timing = ChannelTimingModel(lpddr5x_module())
        with pytest.raises(ConfigurationError):
            timing.transfer_time(-1, SEQUENTIAL_STREAM)

    def test_applies_to_all_technologies(self):
        for tech in ("DDR5", "GDDR6", "HBM3"):
            timing = ChannelTimingModel(build_module(tech))
            assert 0 < timing.efficiency(SEQUENTIAL_STREAM) <= 1.0

    @given(burst=st.floats(64, 1e6), hit=st.floats(0, 1),
           reads=st.floats(0, 1))
    def test_efficiency_always_in_unit_interval(self, burst, hit, reads):
        pattern = AccessPattern(avg_burst_bytes=burst, row_hit_rate=hit,
                                read_fraction=reads)
        timing = ChannelTimingModel(lpddr5x_module())
        assert 0.0 < timing.efficiency(pattern) <= 1.0


class TestAccessPatternValidation:
    def test_rejects_bad_burst(self):
        with pytest.raises(ConfigurationError):
            AccessPattern(avg_burst_bytes=0)

    def test_rejects_bad_hit_rate(self):
        with pytest.raises(ConfigurationError):
            AccessPattern(avg_burst_bytes=64, row_hit_rate=1.2)

    def test_rejects_bad_read_fraction(self):
        with pytest.raises(ConfigurationError):
            AccessPattern(avg_burst_bytes=64, read_fraction=-0.1)
