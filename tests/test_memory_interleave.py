"""Address interleaving and the (D4) contiguity analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AddressError, ConfigurationError
from repro.memory import (
    HOST_INTERLEAVE,
    MODULE_LOCAL_INTERLEAVE,
    InterleaveScheme,
    accelerator_visible_fraction,
    streaming_bandwidth_fraction,
)


class TestSchemeValidation:
    def test_channels_must_be_pow2(self):
        with pytest.raises(ConfigurationError):
            InterleaveScheme(num_channels=6, granule_bytes=256)

    def test_granule_must_be_pow2(self):
        with pytest.raises(ConfigurationError):
            InterleaveScheme(num_channels=4, granule_bytes=100)

    def test_negative_address_rejected(self):
        with pytest.raises(AddressError):
            HOST_INTERLEAVE.channel_of(-1)


class TestMapping:
    def test_channels_rotate_every_granule(self):
        scheme = InterleaveScheme(num_channels=4, granule_bytes=64)
        assert [scheme.channel_of(i * 64) for i in range(5)] == \
            [0, 1, 2, 3, 0]

    def test_local_offset_compacts_channel_space(self):
        scheme = InterleaveScheme(num_channels=4, granule_bytes=64)
        # Second granule on channel 0 (global addr 256) lands at local 64.
        assert scheme.local_offset(256) == 64
        assert scheme.local_offset(256 + 10) == 74

    def test_channel_slices_partition_region(self):
        scheme = InterleaveScheme(num_channels=8, granule_bytes=256)
        slices = scheme.channel_slices(base=128, length=10_000)
        total = sum(size for per_ch in slices for _, size in per_ch)
        assert total == 10_000

    @settings(max_examples=30, deadline=None)
    @given(base=st.integers(0, 1 << 20), length=st.integers(1, 1 << 16),
           channels=st.sampled_from([2, 4, 8]),
           granule=st.sampled_from([64, 256, 4096]))
    def test_partition_property(self, base, length, channels, granule):
        """Every byte of a region lands in exactly one channel slice."""
        scheme = InterleaveScheme(num_channels=channels,
                                  granule_bytes=granule)
        per_channel = [scheme.bytes_in_channel(base, length, ch)
                       for ch in range(channels)]
        assert sum(per_channel) == length


class TestD4Analysis:
    def test_host_interleave_shatters_large_regions(self):
        """D4: a bank/DIMM-local accelerator sees ~1/N of a big region."""
        region = 64 * 2**20
        frac = accelerator_visible_fraction(HOST_INTERLEAVE, 0, region, 0)
        assert frac == pytest.approx(1.0 / HOST_INTERLEAVE.num_channels,
                                     rel=0.01)

    def test_max_contiguous_fragment_is_one_granule(self):
        frag = HOST_INTERLEAVE.max_contiguous_fragment(0, 1 << 20)
        assert frag == HOST_INTERLEAVE.granule_bytes

    def test_module_local_interleave_streams_at_full_bandwidth(self):
        """The CXL controller's own interleaving restores full-module
        streaming for large regions (the resolution of D4)."""
        region = 512 * 2**20
        frac = streaming_bandwidth_fraction(MODULE_LOCAL_INTERLEAVE, 0,
                                            region)
        assert frac > 0.99

    def test_small_region_limited_to_touched_channels(self):
        scheme = InterleaveScheme(num_channels=8, granule_bytes=4096)
        # One granule touches one channel: 1/8 of aggregate bandwidth.
        frac = streaming_bandwidth_fraction(scheme, 0, 4096)
        assert frac == pytest.approx(1.0 / 8)

    def test_empty_region_rejected(self):
        with pytest.raises(AddressError):
            streaming_bandwidth_fraction(HOST_INTERLEAVE, 0, 0)

    def test_bad_channel_rejected(self):
        with pytest.raises(AddressError):
            HOST_INTERLEAVE.bytes_in_channel(0, 100, 99)
