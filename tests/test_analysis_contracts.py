"""Cross-model contract checker: synthetic pairs + the shipped pairing.

CON601/CON602 get synthetic two-class cases, plus the test the rule
exists for: deliberately renaming a ``SimulatedStepTimer`` method in
the *real* source must produce a CON601 on both surviving sides.
CON603 gets known-bad ``as_dict`` bodies with exact codes and lines.
The integration test asserts the shipped ``BatchStepTimer`` /
``SimulatedStepTimer`` pairing is contract-clean.
"""

import textwrap
from pathlib import Path

from repro.analysis.contracts import (
    STEP_TIMER_CONTRACT,
    check_as_dict_keys,
    check_tree,
    class_surface,
    compare_step_timers,
    rules_for,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
REPO_SRC = REPO_ROOT / "src" / "repro"

TIMER_A = textwrap.dedent("""
    class A:
        def prefill_s(self, input_len: int) -> float:
            return 0.0
        def decode_step_s(self, batch: int, context_len: int) -> float:
            return 0.0
""")


def _real_sources():
    (path_a, class_a), (path_b, class_b) = STEP_TIMER_CONTRACT
    return ((REPO_SRC / path_a).read_text(encoding="utf-8"), class_a,
            path_a,
            (REPO_SRC / path_b).read_text(encoding="utf-8"), class_b,
            path_b)


class TestClassSurface:
    def test_only_public_unit_suffixed_methods(self):
        src = textwrap.dedent("""
            class T:
                def prefill_s(self):
                    return 0.0
                def _private_s(self):
                    return 0.0
                def helper(self):
                    return 0.0
        """)
        surface = class_surface(src, "T")
        assert sorted(surface) == ["prefill_s"]

    def test_missing_class_raises(self):
        import pytest
        with pytest.raises(ValueError):
            class_surface("class Other:\n    pass\n", "T")

    def test_params_exclude_self(self):
        surface = class_surface(TIMER_A, "A")
        assert surface["decode_step_s"].params \
            == ("batch", "context_len")
        assert surface["decode_step_s"].returns == "float"


class TestCon601MissingCounterpart:
    def test_extra_method_on_one_side(self):
        timer_b = TIMER_A.replace("class A", "class B") + (
            "    def decode_steps_s(self, batch: int) -> float:\n"
            "        return 0.0\n"
        )
        diags = compare_step_timers(TIMER_A, "A", "a.py",
                                    timer_b, "B", "b.py")
        assert [d.code for d in diags] == ["CON601"]
        assert "B.decode_steps_s" in diags[0].message
        assert diags[0].source == "b.py"

    def test_renamed_real_simulated_timer_method_caught(self):
        # The regression this checker exists for: rename one side of
        # the shipped contract and the pass must fire in both
        # directions (method lost on one side, gained on the other).
        (src_a, class_a, path_a,
         src_b, class_b, path_b) = _real_sources()
        broken = src_b.replace("def decode_steps_s(",
                               "def decode_steps_sim_s(")
        assert broken != src_b, "rename did not apply"
        diags = compare_step_timers(src_a, class_a, path_a,
                                    broken, class_b, path_b)
        assert [d.code for d in diags] == ["CON601", "CON601"]
        messages = " / ".join(d.message for d in diags)
        assert "BatchStepTimer.decode_steps_s" in messages
        assert "SimulatedStepTimer.decode_steps_sim_s" in messages


class TestCon602SignatureMismatch:
    def test_param_name_divergence(self):
        timer_b = TIMER_A.replace("class A", "class B").replace(
            "batch: int, context_len: int", "batch: int, ctx: int")
        diags = compare_step_timers(TIMER_A, "A", "a.py",
                                    timer_b, "B", "b.py")
        assert [d.code for d in diags] == ["CON602"]
        assert "decode_step_s" in diags[0].message

    def test_return_annotation_divergence(self):
        timer_b = TIMER_A.replace("class A", "class B").replace(
            "context_len: int) -> float", "context_len: int) -> int")
        diags = compare_step_timers(TIMER_A, "A", "a.py",
                                    timer_b, "B", "b.py")
        assert [d.code for d in diags] == ["CON602"]

    def test_identical_surfaces_clean(self):
        timer_b = TIMER_A.replace("class A", "class B")
        assert compare_step_timers(TIMER_A, "A", "a.py",
                                   timer_b, "B", "b.py") == []


class TestCon600Unreadable:
    def test_missing_class_is_con600(self):
        diags = compare_step_timers("class X:\n    pass\n", "A", "a.py",
                                    TIMER_A, "A", "b.py")
        assert [d.code for d in diags] == ["CON600"]

    def test_syntax_error_is_con600(self):
        diags = compare_step_timers("def f(:\n", "A", "a.py",
                                    TIMER_A, "A", "b.py")
        assert [d.code for d in diags] == ["CON600"]


class TestCon603AsDictKeys:
    def test_fstring_key_in_dict_literal(self):
        src = (
            "class Stats:\n"
            "    def as_dict(self):\n"
            "        return {f'k.{self.name}': 1}\n"
        )
        diags = check_as_dict_keys(src, "perf/example.py")
        assert [(d.code, d.location) for d in diags] \
            == [("CON603", "perf/example.py:3")]

    def test_computed_subscript_store(self):
        src = textwrap.dedent("""
            class Stats:
                def as_dict(self):
                    out = {}
                    out[self.key] = 1
                    return out
        """)
        diags = check_as_dict_keys(src, "appliance/example.py")
        assert [d.code for d in diags] == ["CON603"]

    def test_literal_keys_clean(self):
        src = textwrap.dedent("""
            class Stats:
                def as_dict(self):
                    out = {"requests": 1}
                    out["completed"] = 2
                    return out
        """)
        assert check_as_dict_keys(src, "perf/example.py") == []

    def test_double_star_expansion_exempt(self):
        src = textwrap.dedent("""
            class Stats:
                def as_dict(self):
                    return {"requests": 1, **self.extra}
        """)
        assert check_as_dict_keys(src, "perf/example.py") == []

    def test_other_functions_ignored(self):
        src = textwrap.dedent("""
            class Stats:
                def snapshot(self):
                    return {self.key: 1}
        """)
        assert check_as_dict_keys(src, "perf/example.py") == []


class TestRuleSelection:
    def test_contract_files_get_pairing_rules(self):
        assert rules_for("perf/analytical.py") \
            == ("CON601", "CON602", "CON603")
        assert rules_for("perf/simulator.py") \
            == ("CON601", "CON602", "CON603")

    def test_as_dict_scope(self):
        assert rules_for("appliance/continuous.py") == ("CON603",)
        assert rules_for("obs/tracer.py") == ()
        assert rules_for("cxl/arbiter.py") == ()


class TestRealTree:
    def test_shipped_pairing_contract_clean(self):
        diags = compare_step_timers(*_real_sources())
        assert diags == [], [d.message for d in diags]

    def test_tree_clean_modulo_baseline(self):
        from repro.analysis.baseline import Baseline
        report = check_tree(REPO_SRC)
        baseline = Baseline.load(
            REPO_ROOT / "tools" / "static_analysis_baseline.json")
        result = baseline.apply(report, REPO_SRC)
        assert result.report.clean, result.report.render()

    def test_known_exceptions_are_the_unit_enum_keys(self):
        report = check_tree(REPO_SRC)
        assert [d.code for d in report.diagnostics] \
            == ["CON603", "CON603"]
        assert all(d.location.startswith("perf/simulator.py")
                   for d in report.diagnostics)
