"""Exporters: Chrome-trace JSON schema, metrics dump, summaries."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    MetricsRegistry,
    Tracer,
    load_chrome_trace,
    render_summary,
    summarize_spans,
    summarize_trace_file,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.export import SIM_PID, WALL_PID


@pytest.fixture()
def tracer():
    tracer = Tracer()
    with tracer.span("host-work", category="runtime", note="outer"):
        with tracer.span("compile", category="runtime"):
            pass
    tracer.sim_span("MPU_MM", start_s=2e-6, dur_s=1e-6, track="pnm.PE",
                    category="accelerator", args={"idx": 0})
    tracer.sim_span("VPU_ADD", start_s=3e-6, dur_s=5e-7, track="pnm.VPU",
                    category="accelerator")
    return tracer


class TestChromeTraceSchema:
    def test_document_shape(self, tracer):
        doc = to_chrome_trace(tracer)
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ns"

    def test_complete_events_have_required_fields(self, tracer):
        events = [e for e in to_chrome_trace(tracer)["traceEvents"]
                  if e["ph"] == "X"]
        assert len(events) == 4
        for event in events:
            for key in ("name", "cat", "ts", "dur", "pid", "tid"):
                assert key in event, key

    def test_sim_timebase_is_simulated_microseconds(self, tracer):
        events = to_chrome_trace(tracer)["traceEvents"]
        mpu = next(e for e in events if e.get("name") == "MPU_MM")
        assert mpu["pid"] == SIM_PID
        assert mpu["ts"] == pytest.approx(2.0)  # 2 us of simulated time
        assert mpu["dur"] == pytest.approx(1.0)

    def test_wall_spans_on_wall_process(self, tracer):
        events = to_chrome_trace(tracer)["traceEvents"]
        compile_event = next(e for e in events
                             if e.get("name") == "compile")
        assert compile_event["pid"] == WALL_PID

    def test_track_names_become_thread_metadata(self, tracer):
        events = to_chrome_trace(tracer)["traceEvents"]
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"pnm.PE", "pnm.VPU"} <= names

    def test_args_passthrough(self, tracer):
        events = to_chrome_trace(tracer)["traceEvents"]
        mpu = next(e for e in events if e.get("name") == "MPU_MM")
        assert mpu["args"] == {"idx": 0}


class TestRoundTrip:
    def test_file_roundtrip_is_valid_json(self, tracer, tmp_path):
        path = write_chrome_trace(tracer, str(tmp_path / "trace.json"))
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["traceEvents"]
        events = load_chrome_trace(path)
        assert [e for e in events if e["ph"] == "X"]

    def test_summary_matches_in_memory_aggregation(self, tracer,
                                                   tmp_path):
        path = write_chrome_trace(tracer, str(tmp_path / "trace.json"))
        from_file = summarize_trace_file(path, top_n=10)
        in_memory = summarize_spans(tracer.spans, top_n=10)
        sim_file = [(r["span"], r["count"], r["sim_ms"])
                    for r in from_file]
        sim_mem = [(r["span"], r["count"], r["sim_ms"])
                   for r in in_memory]
        assert sim_file == sim_mem

    def test_bare_array_variant_loads(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(
            [{"ph": "X", "name": "x", "cat": "c", "ts": 0, "dur": 1,
              "pid": 1, "tid": 1}]))
        assert len(load_chrome_trace(str(path))) == 1

    def test_non_trace_file_rejected(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ConfigurationError):
            load_chrome_trace(str(path))


class TestSummaries:
    def test_ranked_by_cumulative_sim_time(self, tracer):
        rows = summarize_spans(tracer.spans, top_n=10)
        assert rows[0]["span"] == "MPU_MM"
        assert rows[1]["span"] == "VPU_ADD"
        sim_totals = [r["sim_ms"] for r in rows]
        assert sim_totals == sorted(sim_totals, reverse=True)

    def test_top_n_truncates(self, tracer):
        assert len(summarize_spans(tracer.spans, top_n=1)) == 1

    def test_render(self, tracer):
        text = render_summary(summarize_spans(tracer.spans), title="top")
        assert "MPU_MM" in text
        assert "sim_ms" in text
        assert text.startswith("== top ==")

    def test_render_empty(self):
        assert "(no spans recorded)" in render_summary([])


class TestMetricsDump:
    def test_json_file(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("sim.instructions", opcode="MPU_MM").inc(3)
        registry.histogram("wait_s").observe(1e-4)
        path = write_metrics_json(registry, str(tmp_path / "m.json"))
        with open(path) as handle:
            dump = json.load(handle)
        assert dump["counters"]["sim.instructions{opcode=MPU_MM}"][
            "value"] == 3
        assert dump["histograms"]["wait_s"]["count"] == 1


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
