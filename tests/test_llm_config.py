"""LLM configuration and model-zoo arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.llm import (
    GPT3_175B,
    LLMConfig,
    MODEL_ZOO,
    OPT_13B,
    OPT_30B,
    OPT_66B,
    OPT_6_7B,
    get_model,
    tiny_config,
)
from repro.units import GiB


class TestParameterCounts:
    """Zoo models must land near their nominal parameter counts."""

    @pytest.mark.parametrize("config,nominal_billion", [
        (OPT_6_7B, 6.7), (OPT_13B, 13.0), (OPT_30B, 30.0), (OPT_66B, 66.0),
    ])
    def test_opt_zoo_param_counts(self, config, nominal_billion):
        actual = config.num_params / 1e9
        assert actual == pytest.approx(nominal_billion, rel=0.06)

    def test_gpt35_capacity_is_papers_326_gb(self):
        # §I: GPT-3.5 (175B) requires 326 GB of memory at FP16.
        assert GPT3_175B.param_bytes / GiB == pytest.approx(326, abs=4)

    def test_param_bytes_scale_with_dtype(self):
        cfg = tiny_config()
        assert cfg.param_bytes == cfg.num_params * 2

    def test_layer_params_dominated_by_12_d_squared(self):
        cfg = OPT_13B
        assert cfg.params_per_layer == pytest.approx(
            12 * cfg.d_model ** 2, rel=0.01)


class TestValidation:
    def test_heads_must_divide_d_model(self):
        with pytest.raises(ConfigurationError):
            LLMConfig(name="bad", num_layers=2, d_model=100, num_heads=3)

    def test_positive_dimensions_required(self):
        with pytest.raises(ConfigurationError):
            LLMConfig(name="bad", num_layers=0, d_model=64, num_heads=4)

    def test_dtype_bytes_restricted(self):
        with pytest.raises(ConfigurationError):
            LLMConfig(name="bad", num_layers=2, d_model=64, num_heads=4,
                      dtype_bytes=3)

    def test_d_ff_defaults_to_4x(self):
        cfg = LLMConfig(name="x", num_layers=2, d_model=64, num_heads=4)
        assert cfg.d_ff == 256

    def test_negative_seq_len_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_config().working_set_bytes(-1)


class TestZooLookup:
    def test_get_model_known(self):
        assert get_model("OPT-13B") is OPT_13B

    def test_get_model_unknown_lists_options(self):
        with pytest.raises(ConfigurationError, match="OPT-13B"):
            get_model("OPT-99T")

    def test_zoo_names_match_keys(self):
        for name, cfg in MODEL_ZOO.items():
            assert cfg.name == name


class TestDerivedQuantities:
    def test_kv_bytes_per_token(self):
        cfg = tiny_config()
        assert cfg.kv_bytes_per_token() == \
            2 * cfg.num_layers * cfg.d_model * cfg.dtype_bytes

    def test_working_set_grows_linearly(self):
        cfg = OPT_13B
        base = cfg.working_set_bytes(0)
        assert base == cfg.param_bytes
        delta = cfg.working_set_bytes(100) - base
        assert delta == 100 * cfg.kv_bytes_per_token()

    def test_head_dim_multiple_of_16_in_zoo(self):
        # GPT-3 Large uses 96-wide heads; everything else is 64/128-wide.
        for cfg in MODEL_ZOO.values():
            assert cfg.head_dim % 16 == 0

    def test_scaled_changes_only_depth(self):
        deep = OPT_13B.scaled("deep", 80)
        assert deep.num_layers == 80
        assert deep.d_model == OPT_13B.d_model
        assert deep.num_params > OPT_13B.num_params

    @given(layers=st.integers(1, 200), d=st.sampled_from([64, 128, 256]),
           heads=st.sampled_from([1, 2, 4]))
    def test_param_count_positive_and_monotone_in_depth(self, layers, d,
                                                        heads):
        cfg = LLMConfig(name="h", num_layers=layers, d_model=d,
                        num_heads=heads, vocab_size=128, max_seq_len=32)
        deeper = cfg.scaled("h2", layers + 1)
        assert 0 < cfg.num_params < deeper.num_params
