"""Result export (JSON/CSV) and the command-line interface."""

import csv
import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments import run_experiment
from repro.experiments.export import export_all, load_json, to_csv, to_json
from repro.experiments.report import ExperimentResult


@pytest.fixture(scope="module")
def table1():
    return run_experiment("table1")


class TestExport:
    def test_json_roundtrip(self, table1, tmp_path):
        path = to_json(table1, tmp_path / "t1.json")
        loaded = load_json(path)
        assert loaded.experiment_id == table1.experiment_id
        assert loaded.rows == json.loads(json.dumps(table1.rows))

    def test_csv_columns(self, table1, tmp_path):
        path = to_csv(table1, tmp_path / "t1.csv")
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(table1.rows)
        assert rows[3]["technology"] == "LPDDR5X"

    def test_csv_handles_ragged_rows(self, tmp_path):
        result = ExperimentResult(experiment_id="x", title="t",
                                  rows=[{"a": 1}, {"a": 2, "b": 3}])
        path = to_csv(result, tmp_path / "x.csv")
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["b"] == ""
        assert rows[1]["b"] == "3"

    def test_empty_rows_rejected(self, tmp_path):
        result = ExperimentResult(experiment_id="x", title="t", rows=[])
        with pytest.raises(ConfigurationError):
            to_csv(result, tmp_path / "x.csv")

    def test_export_all(self, table1, tmp_path):
        written = export_all([table1], tmp_path / "out")
        assert len(written) == 2
        assert all(p.exists() for p in written)

    def test_load_missing(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_json(tmp_path / "none.json")


class TestCli:
    def test_experiments_lists_registry(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table3" in out

    def test_platform_summary(self, capsys):
        assert main(["platform"]) == 0
        assert "memory_capacity_gb" in capsys.readouterr().out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "table2"]) == 0
        assert "num_pes" in capsys.readouterr().out

    def test_run_with_export(self, capsys, tmp_path):
        assert main(["run", "table1", "--export", str(tmp_path)]) == 0
        assert (tmp_path / "table1.json").exists()
        assert (tmp_path / "table1.csv").exists()

    def test_estimate(self, capsys):
        assert main(["estimate", "OPT-1.3B", "--out", "8"]) == 0
        out = capsys.readouterr().out
        assert "CXL-PNM" in out and "A100-40G" in out

    def test_estimate_unknown_model_fails_cleanly(self, capsys):
        assert main(["estimate", "OPT-9000B"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_generate(self, capsys):
        assert main(["generate", "--num-tokens", "3",
                     "--prompt", "1", "2"]) == 0
        assert "->" in capsys.readouterr().out

    def test_models_table(self, capsys):
        assert main(["models"]) == 0
        assert "OPT-66B" in capsys.readouterr().out
