"""MPU/VPU/DMA timing models and the accelerator spec (Table II)."""

import pytest

from repro.accelerator import (
    AcceleratorSpec,
    CXLPNMDevice,
    DmaTiming,
    MpuTiming,
    VpuTiming,
    isa,
)
from repro.errors import SimulationError
from repro.units import MiB


class TestAcceleratorSpec:
    def test_pe_array_peak_matches_table2(self):
        spec = AcceleratorSpec()
        assert spec.peak_gemm_flops == pytest.approx(4.096e12)

    def test_adder_tree_peak_matches_table2(self):
        spec = AcceleratorSpec()
        assert spec.peak_gemv_flops == pytest.approx(4.096e12)

    def test_table2_render_matches_paper(self):
        table = CXLPNMDevice().table2()
        assert table["num_pes"] == 2048
        assert table["adder_tree_multipliers"] == 2048
        assert table["adder_tree_adders"] == 2032
        assert table["register_file_mb"] == 63
        assert table["dma_buffer_mb"] == 1
        assert table["dram_io_width"] == 1024
        assert table["sram_io_width"] == 16384
        assert table["technology_nm"] == 7
        assert table["frequency_ghz"] == 1.0
        assert table["platform_max_watts"] == 150.0


class TestMpuTiming:
    def test_gemm_cycles_scale_with_work(self):
        mpu = MpuTiming()
        small = mpu.gemm_cycles(64, 128, 128)
        big = mpu.gemm_cycles(64, 128, 1280)
        assert big > 5 * small

    def test_tile_rounding_penalizes_tiny_matmuls(self):
        mpu = MpuTiming()
        tiny = mpu.gemm_cycles(1, 1, 1)
        # One MAC of work still costs a full tile pass + pipeline fill.
        assert tiny > mpu.pipeline_fill_cycles

    def test_gemv_peak_rate(self):
        mpu = MpuTiming()
        # A perfectly tiled GEMV runs at 2048 MACs/cycle.
        cycles = mpu.gemv_cycles(1280, 1600)
        work = 1280 * 1600
        assert cycles - mpu.pipeline_fill_cycles == work // 2048

    def test_masked_mm_pays_fill_once(self):
        mpu = MpuTiming()
        one = isa.MpuMaskedMm(dst="m1", q="m0", k_addr=0, heads=1,
                              head_dim=128, ctx=256, m=1, scale=1.0,
                              mask_offset=255)
        four = isa.MpuMaskedMm(dst="m1", q="m0", k_addr=0, heads=4,
                               head_dim=128, ctx=256, m=1, scale=1.0,
                               mask_offset=255)
        per_head = mpu.cycles(one) - mpu.pipeline_fill_cycles
        assert mpu.cycles(four) == mpu.pipeline_fill_cycles + 4 * per_head

    def test_non_mpu_instruction_rejected(self):
        with pytest.raises(SimulationError):
            MpuTiming().cycles(isa.VpuGelu(dst="m1", src="m0"))


class TestVpuTiming:
    def test_multi_pass_ops_cost_more(self):
        vpu = VpuTiming()
        add = vpu.cycles_for_elements("VPU_ADD", 1 << 16)
        ln = vpu.cycles_for_elements("VPU_LAYERNORM", 1 << 16)
        assert ln > 2 * (add - vpu.issue_cycles)

    def test_redumax_fused_softmax_cheaper(self):
        vpu = VpuTiming()
        plain = vpu.cycles(isa.VpuSoftmax(dst="m1", src="m0"), 1 << 16)
        fused = vpu.cycles(isa.VpuSoftmax(dst="m1", src="m0", rowmax="v0"),
                           1 << 16)
        assert fused < plain

    def test_unknown_opcode_rejected(self):
        with pytest.raises(SimulationError):
            VpuTiming().cycles_for_elements("VPU_FFT", 100)


class TestDmaTiming:
    def test_large_transfer_near_bandwidth(self):
        dma = DmaTiming(bandwidth=1e12)
        # Burst re-arm costs ~4% at 1 MiB buffers; stay within 5% of peak.
        assert 1e9 / dma.transfer_time(1e9) == pytest.approx(1e12, rel=0.05)

    def test_small_transfer_dominated_by_setup(self):
        dma = DmaTiming(bandwidth=1e12)
        assert dma.transfer_time(64) >= dma.setup_s

    def test_burst_rearm_for_big_transfers(self):
        dma = DmaTiming(bandwidth=1e12, buffer_bytes=1 * MiB)
        one_buf = dma.transfer_time(1 * MiB)
        two_buf = dma.transfer_time(2 * MiB)
        assert two_buf > 2 * one_buf - dma.setup_s - 1e-12

    def test_zero_transfer_free(self):
        assert DmaTiming(bandwidth=1e12).transfer_time(0) == 0.0

    def test_gather_per_row_cost(self):
        dma = DmaTiming(bandwidth=1e12)
        few = dma.gather_time(2, 256)
        many = dma.gather_time(64, 256)
        assert many > few

    def test_invalid_params_rejected(self):
        with pytest.raises(SimulationError):
            DmaTiming(bandwidth=0)
        with pytest.raises(SimulationError):
            DmaTiming(bandwidth=1e12).transfer_time(-1)
        with pytest.raises(SimulationError):
            DmaTiming(bandwidth=1e12).gather_time(0, 64)


class TestDevicePower:
    def test_idle_below_max(self, pnm_device):
        idle = pnm_device.power_watts(0.0, 0.0)
        busy = pnm_device.power_watts(1.0, 1.0)
        assert idle < busy <= pnm_device.spec.platform_max_watts

    def test_power_capped_at_platform_budget(self, pnm_device):
        assert pnm_device.power_watts(1.0, 1.0) <= 150.0

    def test_bad_utilization_rejected(self, pnm_device):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            pnm_device.power_watts(1.5, 0.0)

    def test_effective_bandwidth_below_peak(self, pnm_device):
        assert pnm_device.effective_memory_bandwidth \
            < pnm_device.peak_memory_bandwidth
