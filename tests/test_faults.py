"""Fault injection and graceful degradation (repro.faults).

The two load-bearing guarantees:

* **off means off** — with no plan (or an explicit empty one) every
  hook short-circuits and results are bit-identical, asserted here for
  both the generation path and the continuous-batching trace;
* **deterministic chaos** — the same plan replayed over the same
  workload yields the same counts and the same failover timeline.
"""

import pytest

from repro.appliance import ContinuousBatchScheduler, RequestScheduler
from repro.appliance.continuous import FailoverEvent
from repro.appliance.scheduler import (
    infeasible_error,
    infeasible_reason,
    timer_service,
)
from repro.errors import (
    AdmissionError,
    DeviceLostError,
    ExecutionError,
    FaultInjectionError,
    ReproError,
    TransientDeviceError,
    UncorrectableMemoryError,
)
from repro.faults import (
    DeviceFaultEvent,
    DeviceFaultKind,
    FaultPlan,
    FaultState,
    chaos,
    get_faults,
    paper_section_ix_plan,
)
from repro.llm import (
    InferenceRequest,
    peak_kv_bytes,
    random_weights,
    tiny_config,
)
from repro.obs import MetricsRegistry, SIM_CLOCK, Tracer, observe
from repro.runtime.session import InferenceSession

CFG = tiny_config()


class ConstStep:
    """Hand-computable step model for scheduler tests."""

    def prefill_s(self, input_len):
        return 1.0

    def decode_step_s(self, batch, context_len):
        return 0.5


def _memory_for(batch, input_len=4, output_len=3):
    return CFG.param_bytes + batch * peak_kv_bytes(CFG, input_len,
                                                   output_len)


def _requests(n, input_len=4, output_len=3):
    return [InferenceRequest(input_len, output_len, request_id=i)
            for i in range(n)]


class TestPlan:
    def test_default_plan_is_empty(self):
        assert FaultPlan().is_empty
        assert FaultPlan.empty(seed=9).is_empty

    def test_builders_compose_and_enable(self):
        plan = (FaultPlan(seed=2)
                .with_link_errors(1e-3)
                .with_memory_upsets(0.5, scrub_every_ticks=4)
                .with_launch_faults(transient_rate=0.1)
                .with_device_failure(at_s=5.0, device=1))
        assert not plan.is_empty
        assert plan.link.enabled and plan.memory.enabled
        assert plan.launch.enabled and plan.device_events
        assert plan.seed == 2

    def test_device_events_sorted_by_time(self):
        plan = (FaultPlan()
                .with_device_failure(at_s=9.0)
                .with_device_stall(at_s=1.0, duration_s=2.0))
        assert [e.at_s for e in plan.device_events] == [1.0, 9.0]

    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan().with_link_errors(crc_error_rate=1.5)
        with pytest.raises(FaultInjectionError):
            FaultPlan().with_memory_upsets(-0.1)
        with pytest.raises(FaultInjectionError):
            FaultPlan().with_device_stall(at_s=1.0, duration_s=0.0)
        with pytest.raises(FaultInjectionError):
            DeviceFaultEvent(DeviceFaultKind.FAIL, at_s=-1.0)

    def test_paper_plan_exercises_every_mechanism(self):
        plan = paper_section_ix_plan()
        assert plan.link.enabled and plan.memory.enabled
        assert plan.launch.enabled
        kinds = {e.kind for e in plan.device_events}
        assert kinds == {DeviceFaultKind.STALL, DeviceFaultKind.FAIL}


class TestContext:
    def test_no_ambient_state_by_default(self):
        assert get_faults() is None

    def test_chaos_installs_and_restores(self):
        plan = FaultPlan().with_link_errors(1e-3)
        with chaos(plan) as state:
            assert get_faults() is state
            assert state.plan is plan
        assert get_faults() is None

    def test_explicit_injection_wins(self):
        state = FaultState(FaultPlan())
        assert get_faults(state) is state


class TestLinkFaults:
    def test_empty_model_consumes_no_randomness(self):
        state = FaultState(FaultPlan())
        assert state.link_transfer(1000) == (0.0, 0, 0)
        assert state.counters.link_flits == 0

    def test_replay_penalty_and_counters(self):
        state = FaultState(FaultPlan(seed=0).with_link_errors(0.5))
        penalty_s, errors, replays = state.link_transfer(400)
        assert errors > 0 and replays >= errors
        assert penalty_s > 0
        assert state.counters.link_crc_errors == errors

    def test_transfer_time_grows_and_is_deterministic(self):
        from repro.cxl.link import GEN5_X16
        clean = GEN5_X16.transfer_time(1 << 20)
        plan = FaultPlan(seed=4).with_link_errors(0.01)
        with chaos(plan):
            faulted_a = GEN5_X16.transfer_time(1 << 20)
        with chaos(plan):
            faulted_b = GEN5_X16.transfer_time(1 << 20)
        assert faulted_a > clean
        assert faulted_a == faulted_b

    def test_link_counters_reach_metrics_registry(self):
        registry = MetricsRegistry()
        from repro.cxl.link import GEN5_X16
        with observe(metrics=registry):
            with chaos(FaultPlan(seed=0).with_link_errors(0.05)):
                GEN5_X16.transfer_time(1 << 20)
        names = registry.names()
        assert any(n.startswith("cxl.link.crc_errors") for n in names)
        assert any(n.startswith("cxl.link.replays") for n in names)


class TestLaunchFaults:
    def test_transient_launch_is_retried_and_result_unchanged(self):
        weights = random_weights(CFG, seed=3)
        baseline = InferenceSession(weights).generate([1, 2, 3], 4)
        plan = FaultPlan(seed=7).with_launch_faults(transient_rate=0.3,
                                                    max_retries=10)
        with chaos(plan) as state:
            trace = InferenceSession(weights).generate([1, 2, 3], 4)
        assert trace.tokens == baseline.tokens
        assert state.counters.launch_transients > 0
        assert state.counters.launch_retries \
            == state.counters.launch_transients

    def test_retry_budget_escalates_to_device_lost(self):
        plan = FaultPlan(seed=7).with_launch_faults(transient_rate=0.99,
                                                    max_retries=2)
        with chaos(plan) as state:
            session = InferenceSession(random_weights(CFG, seed=3))
            with pytest.raises(DeviceLostError):
                session.generate([1, 2, 3], 4)
        assert state.counters.launch_retries == 2

    def test_permanent_failure_at_scheduled_launch(self):
        plan = FaultPlan().with_launch_faults(fail_at_launch=2)
        with chaos(plan):
            session = InferenceSession(random_weights(CFG, seed=3))
            with pytest.raises(DeviceLostError):
                session.generate([1, 2, 3], 4)


class TestMemoryFaults:
    def test_single_bit_upsets_corrected_transparently(self):
        weights = random_weights(CFG, seed=3)
        baseline = InferenceSession(weights).generate([1, 2, 3], 4)
        plan = FaultPlan(seed=5).with_memory_upsets(0.5,
                                                    scrub_every_ticks=2)
        with chaos(plan) as state:
            trace = InferenceSession(weights).generate([1, 2, 3], 4)
        assert trace.tokens == baseline.tokens
        assert state.counters.mem_ticks == 4  # one per executed stage
        assert state.counters.mem_scrubs == 2

    def test_double_bit_upset_aborts_generation(self):
        plan = FaultPlan().with_memory_upsets(0.0, double_bit_at_tick=2)
        with chaos(plan) as state:
            session = InferenceSession(random_weights(CFG, seed=3))
            with pytest.raises(UncorrectableMemoryError):
                session.generate([1, 2, 3], 6)
        assert state.counters.mem_uncorrectable == 1

    def test_uncorrectable_is_an_execution_error(self):
        # Back-compat: callers catching ExecutionError keep working.
        assert issubclass(UncorrectableMemoryError, ExecutionError)


class TestFailover:
    def test_failed_device_requeues_and_everything_completes(self):
        plan = FaultPlan(seed=1).with_device_failure(at_s=2.0, device=1)
        with chaos(plan) as state:
            engine = ContinuousBatchScheduler(
                ConstStep(), CFG, _memory_for(8), num_devices=2)
            stats = engine.run(_requests(8))
        assert len(stats.completed) == 8
        assert stats.devices_failed == 1
        assert stats.failovers > 0
        assert state.counters.requests_requeued == stats.failovers
        assert len(stats.failover_latencies_s) == stats.failovers
        assert max(c.failovers for c in stats.completed) == 1

    def test_failover_timeline_is_recorded(self):
        plan = FaultPlan().with_device_failure(at_s=2.0, device=1)
        with chaos(plan):
            stats = ContinuousBatchScheduler(
                ConstStep(), CFG, _memory_for(8),
                num_devices=2).run(_requests(8))
        assert len(stats.failover_events) == 1
        event = stats.failover_events[0]
        assert isinstance(event, FailoverEvent)
        assert event.device == 1 and event.at_s >= 2.0

    def test_stall_extends_makespan_by_its_duration(self):
        base = ContinuousBatchScheduler(
            ConstStep(), CFG, _memory_for(8)).run(_requests(4))
        plan = FaultPlan().with_device_stall(at_s=1.0, duration_s=3.0)
        with chaos(plan) as state:
            stalled = ContinuousBatchScheduler(
                ConstStep(), CFG, _memory_for(8)).run(_requests(4))
        assert stalled.stall_s == 3.0
        assert stalled.makespan_s == pytest.approx(base.makespan_s + 3.0)
        assert state.counters.device_stall_s == 3.0

    def test_all_devices_dead_rejects_with_typed_error(self):
        plan = FaultPlan().with_device_failure(at_s=2.0, device=0)
        with chaos(plan):
            stats = ContinuousBatchScheduler(
                ConstStep(), CFG, _memory_for(8)).run(_requests(6))
        assert not stats.completed
        assert len(stats.rejected) == 6
        assert all(isinstance(r.error, DeviceLostError)
                   for r in stats.rejected)

    def test_event_on_unmapped_device_is_ignored(self):
        plan = FaultPlan().with_device_failure(at_s=1.0, device=7)
        with chaos(plan):
            stats = ContinuousBatchScheduler(
                ConstStep(), CFG, _memory_for(8)).run(_requests(4))
        assert len(stats.completed) == 4
        assert stats.devices_failed == 0

    def test_two_devices_halve_the_closed_batch_makespan(self):
        # Sanity on the multi-device timing: devices run concurrently,
        # so 8 prefill-only requests on 2 devices end at 4, not 8.
        one = ContinuousBatchScheduler(
            ConstStep(), CFG, _memory_for(8)).run(_requests(8, output_len=1))
        two = ContinuousBatchScheduler(
            ConstStep(), CFG, _memory_for(8),
            num_devices=2).run(_requests(8, output_len=1))
        assert one.makespan_s == 8.0
        assert two.makespan_s == 4.0


class TestOffMeansOff:
    def test_generation_bit_identical_without_plan(self):
        weights = random_weights(CFG, seed=3)
        bare = InferenceSession(weights).generate([1, 2, 3], 4)
        with chaos(FaultPlan.empty()):
            empty = InferenceSession(weights).generate([1, 2, 3], 4)
        assert empty.tokens == bare.tokens
        assert empty.stage_times_s == bare.stage_times_s  # bit-identical
        assert empty.instructions == bare.instructions

    def test_continuous_trace_bit_identical_without_plan(self):
        def traced_run():
            tracer = Tracer()
            with observe(tracer=tracer):
                stats = ContinuousBatchScheduler(
                    ConstStep(), CFG, _memory_for(4)).run(_requests(6))
            sim_spans = [(s.name, s.track, s.start_ns, s.dur_ns)
                         for s in tracer.spans if s.clock is SIM_CLOCK]
            return stats.as_dict(), sim_spans

        bare_stats, bare_spans = traced_run()
        with chaos(FaultPlan.empty()):
            empty_stats, empty_spans = traced_run()
        assert empty_stats == bare_stats
        assert empty_spans == bare_spans

    def test_empty_plan_state_consumes_no_randomness(self):
        state = FaultState(FaultPlan.empty())
        assert state.link_transfer(10_000) == (0.0, 0, 0)
        assert state.launch_fault() is None
        assert state.counters.as_dict() \
            == FaultState(FaultPlan.empty()).counters.as_dict()


class TestChaosHarness:
    @pytest.fixture(scope="class")
    def reports(self):
        from repro.faults.chaos_harness import ChaosConfig, run_chaos
        plan = (paper_section_ix_plan(seed=3)
                .with_device_failure(at_s=6.0, device=1))
        config = ChaosConfig(num_requests=6, readback_reads=32)
        return run_chaos(plan, config), run_chaos(plan, config)

    def test_deterministic_across_invocations(self, reports):
        first, second = reports
        assert first.as_dict() == second.as_dict()

    def test_failover_timeline_and_counts_reported(self, reports):
        report, _ = reports
        assert report.generation_outcome == "completed"
        assert report.failover_timeline
        assert report.counters["device_failures"] >= 1
        assert report.serving["requests"] > 0

    def test_fault_counters_land_in_metrics(self, reports):
        report, _ = reports
        assert any(key.startswith("faults.") for key in report.metrics)

    def test_render_mentions_every_layer(self, reports):
        text = reports[0].render()
        for word in ("generation", "memory", "cxl link", "devices",
                     "serving", "failover"):
            assert word in text


class TestTypedErrors:
    def test_hierarchy_exported_from_package_root(self):
        import repro
        for name in ("UncorrectableMemoryError", "TransientDeviceError",
                     "DeviceLostError", "AdmissionError",
                     "FaultInjectionError"):
            assert name in repro.__all__
            assert issubclass(getattr(repro, name), ReproError)

    def test_infeasible_error_is_typed(self):
        oversized = InferenceRequest(CFG.max_seq_len, 8, request_id=0)
        error = infeasible_error(CFG, None, oversized)
        assert isinstance(error, AdmissionError)
        assert infeasible_reason(CFG, None, oversized) == str(error)
        assert infeasible_error(CFG, None, _requests(1)[0]) is None

    def test_schedulers_record_typed_rejections(self):
        oversized = InferenceRequest(CFG.max_seq_len, 8, request_id=0)
        continuous = ContinuousBatchScheduler(
            ConstStep(), CFG, _memory_for(4)).run(
                [oversized] + _requests(2))
        assert isinstance(continuous.rejected[0].error, AdmissionError)
        fcfs = RequestScheduler(
            lambda request: 1.0, num_instances=1, config=CFG).run(
                [oversized] + _requests(2))
        assert isinstance(fcfs.rejected[0].error, AdmissionError)
        import dataclasses
        with pytest.raises(dataclasses.FrozenInstanceError):
            # Frozen: a rejection record cannot be edited after the fact.
            fcfs.rejected[0].reason = "other"
