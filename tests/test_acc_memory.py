"""Device memory: allocation, addressing, tensor round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accelerator import ALIGNMENT, DeviceMemory
from repro.errors import AddressError, AllocationError
from repro.units import KiB, MiB


class TestAllocation:
    def test_regions_aligned(self, device_memory):
        a = device_memory.alloc("a", 100)
        b = device_memory.alloc("b", 100)
        assert a.addr % ALIGNMENT == 0
        assert b.addr % ALIGNMENT == 0
        assert b.addr >= a.end

    def test_duplicate_name_rejected(self, device_memory):
        device_memory.alloc("x", 64)
        with pytest.raises(AllocationError):
            device_memory.alloc("x", 64)

    def test_overflow_rejected(self):
        mem = DeviceMemory(1 * KiB)
        with pytest.raises(AllocationError):
            mem.alloc("big", 2 * KiB)

    def test_zero_size_rejected(self, device_memory):
        with pytest.raises(AllocationError):
            device_memory.alloc("z", 0)

    def test_region_lookup(self, device_memory):
        region = device_memory.alloc("named", 128)
        assert device_memory.region("named") == region
        with pytest.raises(AddressError):
            device_memory.region("missing")

    def test_capacity_must_be_positive(self):
        with pytest.raises(AllocationError):
            DeviceMemory(0)


class TestTensorIO:
    def test_roundtrip(self, device_memory):
        data = np.arange(24, dtype=np.float32).reshape(4, 6)
        region = device_memory.store_named("t", data)
        np.testing.assert_array_equal(
            device_memory.read_tensor(region.addr, (4, 6)), data)

    def test_read_returns_copy(self, device_memory):
        data = np.ones((2, 2), dtype=np.float32)
        region = device_memory.store_named("t", data)
        out = device_memory.read_tensor(region.addr, (2, 2))
        out[0, 0] = 99.0
        again = device_memory.read_tensor(region.addr, (2, 2))
        assert again[0, 0] == 1.0

    def test_write_casts_to_float32(self, device_memory):
        region = device_memory.alloc_tensor("t", (3,))
        device_memory.write_tensor(region.addr,
                                   np.array([1, 2, 3], dtype=np.int64))
        out = device_memory.read_tensor(region.addr, (3,))
        assert out.dtype == np.float32

    def test_out_of_range_read(self, device_memory):
        with pytest.raises(AddressError):
            device_memory.read_tensor(device_memory.capacity - 4, (4,))

    def test_row_access_matches_full_read(self, device_memory):
        table = np.random.default_rng(0).standard_normal((10, 8)).astype(
            np.float32)
        region = device_memory.store_named("table", table)
        np.testing.assert_array_equal(
            device_memory.read_row(region.addr, 3, 8), table[3])

    def test_negative_row_rejected(self, device_memory):
        region = device_memory.store_named(
            "t2", np.zeros((2, 2), dtype=np.float32))
        with pytest.raises(AddressError):
            device_memory.read_row(region.addr, -1, 2)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6, width=32), min_size=1,
                    max_size=64))
    def test_roundtrip_property(self, values):
        mem = DeviceMemory(1 * MiB)
        data = np.array(values, dtype=np.float32)
        region = mem.store_named("v", data)
        np.testing.assert_array_equal(mem.read_tensor(region.addr,
                                                      data.shape), data)
