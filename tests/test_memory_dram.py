"""DRAM technology parameters reproduce Table I's package rows."""

import pytest

from repro.errors import ConfigurationError
from repro.memory import (
    DDR5,
    GDDR6,
    HBM3,
    LPDDR5X,
    StackingTech,
    TECHNOLOGIES,
    get_technology,
)
from repro.units import GB


class TestTable1PackageRows:
    @pytest.mark.parametrize("tech,gbps,io,bw_gb,cap_gb", [
        (DDR5, 5.6, 4, 2.8, 16),
        (GDDR6, 24.0, 32, 96.0, 2),
        (HBM3, 6.4, 1024, 819.2, 16),
        (LPDDR5X, 8.5, 128, 136.0, 64),
    ])
    def test_per_package_rows(self, tech, gbps, io, bw_gb, cap_gb):
        assert tech.gbps_per_pin == gbps
        assert tech.io_width_per_package == io
        assert tech.bandwidth_per_package / GB == pytest.approx(bw_gb)
        assert tech.capacity_per_package / GB == pytest.approx(cap_gb)

    def test_voltages_match_table1(self):
        assert (DDR5.core_voltage, DDR5.io_voltage) == (1.1, 1.1)
        assert (GDDR6.core_voltage, GDDR6.io_voltage) == (1.35, 1.35)
        assert (HBM3.core_voltage, HBM3.io_voltage) == (1.1, 0.4)
        assert (LPDDR5X.core_voltage, LPDDR5X.io_voltage) == (1.05, 0.5)

    def test_normalized_power_row(self):
        assert DDR5.table1_normalized_module_power == 0.35
        assert GDDR6.table1_normalized_module_power == 0.96
        assert HBM3.table1_normalized_module_power == 3.00
        assert LPDDR5X.table1_normalized_module_power == 1.00


class TestTechnologyProperties:
    def test_lpddr_uses_cheap_wire_bonding(self):
        assert LPDDR5X.stacking is StackingTech.WIRE_BOND
        assert DDR5.stacking is StackingTech.TSV
        assert HBM3.stacking is StackingTech.TSV
        assert GDDR6.stacking is StackingTech.NONE

    def test_lpddr_14_percent_lower_energy_than_gddr6(self):
        # §I advantage (2): 14% lower pJ/bit than GDDR6.
        ratio = LPDDR5X.access_energy_pj_per_bit \
            / GDDR6.access_energy_pj_per_bit
        assert ratio == pytest.approx(0.86, abs=0.01)

    def test_lpddr_package_has_32_dies(self):
        # Fig. 5: 8 channels x 2 stacks x 2 dies.
        assert LPDDR5X.dies_per_package == 32

    def test_access_energy_scales_with_bytes(self):
        one = LPDDR5X.access_energy_joules(1e9)
        two = LPDDR5X.access_energy_joules(2e9)
        assert two == pytest.approx(2 * one)


class TestLookup:
    def test_get_technology(self):
        assert get_technology("LPDDR5X") is LPDDR5X

    def test_unknown_technology(self):
        with pytest.raises(ConfigurationError):
            get_technology("DDR4")

    def test_registry_complete(self):
        assert set(TECHNOLOGIES) == {"DDR5", "GDDR6", "HBM3", "LPDDR5X"}
