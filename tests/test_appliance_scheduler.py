"""Request scheduler: FCFS dispatch, queueing, statistics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.appliance.scheduler import (
    RequestScheduler,
    ServiceStats,
    poisson_arrivals,
    timer_service,
)
from repro.accelerator import CXLPNMDevice
from repro.errors import ConfigurationError
from repro.llm import InferenceRequest, OPT_1_3B, sampled_workload, tiny_config
from repro.obs import MetricsRegistry
from repro.perf.analytical import PnmPerfModel


def _constant_service(latency: float):
    return lambda request: latency


class TestScheduler:
    def test_single_instance_serializes(self):
        scheduler = RequestScheduler(_constant_service(1.0),
                                     num_instances=1)
        requests = [InferenceRequest(1, 1, request_id=i) for i in range(4)]
        stats = scheduler.run(requests)
        assert stats.makespan_s == pytest.approx(4.0)
        finishes = sorted(c.finish_s for c in stats.completed)
        assert finishes == pytest.approx([1.0, 2.0, 3.0, 4.0])

    def test_instances_parallelize(self):
        scheduler = RequestScheduler(_constant_service(1.0),
                                     num_instances=4)
        requests = [InferenceRequest(1, 1, request_id=i) for i in range(4)]
        assert scheduler.run(requests).makespan_s == pytest.approx(1.0)

    def test_queue_wait_accumulates(self):
        scheduler = RequestScheduler(_constant_service(2.0),
                                     num_instances=1)
        requests = [InferenceRequest(1, 1, request_id=i) for i in range(3)]
        stats = scheduler.run(requests)
        waits = sorted(c.queue_wait_s for c in stats.completed)
        assert waits == pytest.approx([0.0, 2.0, 4.0])

    def test_arrivals_respected(self):
        scheduler = RequestScheduler(_constant_service(1.0),
                                     num_instances=1)
        requests = [InferenceRequest(1, 1, request_id=i) for i in range(2)]
        stats = scheduler.run(requests, arrival_times=[0.0, 10.0])
        assert stats.completed[-1].start_s == pytest.approx(10.0)
        assert stats.completed[-1].queue_wait_s == 0.0

    def test_utilization_bounds(self):
        scheduler = RequestScheduler(_constant_service(1.0),
                                     num_instances=2)
        requests = [InferenceRequest(1, 1, request_id=i) for i in range(5)]
        stats = scheduler.run(requests)
        assert 0.0 < stats.instance_utilization <= 1.0

    def test_percentiles_ordered(self):
        scheduler = RequestScheduler(_constant_service(0.5),
                                     num_instances=1)
        requests = [InferenceRequest(1, 1, request_id=i)
                    for i in range(20)]
        stats = scheduler.run(requests)
        assert stats.p50_latency_s <= stats.p95_latency_s
        assert stats.mean_latency_s > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RequestScheduler(_constant_service(1.0), num_instances=0)
        scheduler = RequestScheduler(_constant_service(1.0), 1)
        with pytest.raises(ConfigurationError):
            scheduler.run([])
        with pytest.raises(ConfigurationError):
            scheduler.run([InferenceRequest(1, 1)], arrival_times=[0, 1])

    def test_fcfs_stable_under_tied_arrivals(self):
        """Equal arrival times must not reorder requests: completion
        order on one instance follows submission order."""
        scheduler = RequestScheduler(_constant_service(1.0),
                                     num_instances=1)
        requests = [InferenceRequest(1, 1, request_id=i)
                    for i in range(8)]
        stats = scheduler.run(requests, arrival_times=[0.0] * 8)
        order = [c.request.request_id
                 for c in sorted(stats.completed,
                                 key=lambda c: c.finish_s)]
        assert order == list(range(8))


class TestAdmission:
    """Infeasible requests are rejected, never served with fake latency."""

    def test_oversize_request_rejected(self):
        cfg = tiny_config()  # max_seq_len = 64
        scheduler = RequestScheduler(_constant_service(1.0), 1, config=cfg)
        good = InferenceRequest(4, 4, request_id=0)
        bad = InferenceRequest(60, 10, request_id=1)
        stats = scheduler.run([good, bad])
        assert [c.request.request_id for c in stats.completed] == [0]
        (rej,) = stats.rejected
        assert rej.request.request_id == 1
        assert "max_seq_len" in rej.reason
        assert stats.as_dict()["rejected"] == 1.0

    def test_kv_overflow_rejected(self):
        cfg = tiny_config()
        scheduler = RequestScheduler(
            _constant_service(1.0), 1, config=cfg,
            memory_bytes=cfg.param_bytes + cfg.kv_bytes_per_token())
        stats = scheduler.run([InferenceRequest(4, 4, request_id=0)])
        assert not stats.completed
        assert "memory" in stats.rejected[0].reason

    def test_all_rejected_reports_zeros(self):
        cfg = tiny_config()
        scheduler = RequestScheduler(_constant_service(1.0), 1, config=cfg)
        stats = scheduler.run([InferenceRequest(60, 10, request_id=i)
                               for i in range(3)])
        assert stats.makespan_s == 0.0
        assert stats.mean_latency_s == 0.0
        assert stats.p95_latency_s == 0.0
        assert stats.mean_queue_wait_s == 0.0
        assert stats.throughput_tokens_per_s == 0.0
        assert stats.instance_utilization == 0.0
        for value in stats.as_dict().values():
            assert value == value  # no NaNs

    def test_rejection_counter(self):
        cfg = tiny_config()
        metrics = MetricsRegistry()
        scheduler = RequestScheduler(_constant_service(1.0), 1, config=cfg,
                                     metrics=metrics)
        scheduler.run([InferenceRequest(60, 10), InferenceRequest(4, 4)])
        assert metrics.counter("scheduler.rejected").value == 1


class TestQueueDepthGauge:
    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 20),
           rate=st.floats(0.5, 50.0),
           latency=st.floats(0.01, 2.0),
           instances=st.integers(1, 4),
           seed=st.integers(0, 100))
    def test_never_negative(self, n, rate, latency, instances, seed):
        metrics = MetricsRegistry()
        scheduler = RequestScheduler(_constant_service(latency),
                                     num_instances=instances,
                                     metrics=metrics)
        requests = [InferenceRequest(1, 1, request_id=i) for i in range(n)]
        scheduler.run(requests, poisson_arrivals(n, rate, seed=seed))
        gauge = metrics.gauge("scheduler.queue_depth")
        assert gauge.min >= 0
        assert gauge.max <= n

    def test_tied_arrivals_stay_non_negative(self):
        metrics = MetricsRegistry()
        scheduler = RequestScheduler(_constant_service(1.0),
                                     num_instances=2, metrics=metrics)
        requests = [InferenceRequest(1, 1, request_id=i) for i in range(6)]
        scheduler.run(requests, arrival_times=[0.0] * 6)
        assert metrics.gauge("scheduler.queue_depth").min >= 0


class TestTimerService:
    def test_longer_requests_take_longer(self):
        service = timer_service(OPT_1_3B, PnmPerfModel(CXLPNMDevice()))
        short = service(InferenceRequest(16, 8))
        long = service(InferenceRequest(16, 64))
        assert long > short

    def test_end_to_end_with_sampled_workload(self):
        service = timer_service(OPT_1_3B, PnmPerfModel(CXLPNMDevice()))
        requests = sampled_workload(12, seed=5, mean_output=32,
                                    max_total=512)
        scheduler = RequestScheduler(service, num_instances=4)
        arrivals = poisson_arrivals(len(requests), rate_per_s=50.0)
        stats = scheduler.run(requests, arrivals)
        assert len(stats.completed) == 12
        assert stats.throughput_tokens_per_s > 0


class TestPoissonArrivals:
    def test_monotone_and_deterministic(self):
        a = poisson_arrivals(50, 10.0, seed=1)
        b = poisson_arrivals(50, 10.0, seed=1)
        assert a == b
        assert all(x < y for x, y in zip(a, a[1:]))

    def test_rate_roughly_respected(self):
        arrivals = poisson_arrivals(2000, 100.0, seed=2)
        assert arrivals[-1] == pytest.approx(20.0, rel=0.2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            poisson_arrivals(0, 1.0)
        with pytest.raises(ConfigurationError):
            poisson_arrivals(5, 0.0)
