"""Module composition reproduces Table I's module rows under FHHL."""

import pytest

from repro.errors import FormFactorError
from repro.memory import (
    FHHL,
    HHHL,
    MemoryModule,
    build_module,
    get_technology,
    lpddr5x_module,
    max_packages,
    packaging_cost_factor,
    table1_rows,
    validate_composition,
)
from repro.units import GB, TB


class TestTable1ModuleRows:
    @pytest.mark.parametrize("tech,pkgs,bw,cap", [
        ("DDR5", 32, 89.6e9, 512e9),
        ("GDDR6", 16, 1.536e12, 32e9),
        ("HBM3", 5, 4.096e12, 80e9),
        ("LPDDR5X", 8, 1.088e12, 512e9),
    ])
    def test_max_module_per_technology(self, tech, pkgs, bw, cap):
        module = build_module(tech)
        assert module.num_packages == pkgs
        assert module.peak_bandwidth == pytest.approx(bw, rel=1e-6)
        assert module.capacity_bytes == pytest.approx(cap, rel=1e-6)

    def test_io_width_per_module(self):
        widths = {row["technology"]: row["io_width_per_module"]
                  for row in table1_rows()}
        assert widths == {"DDR5": 128, "GDDR6": 512, "HBM3": 5120,
                          "LPDDR5X": 1024}

    def test_lpddr5x_is_the_papers_module(self):
        module = lpddr5x_module()
        assert module.capacity_bytes == 512 * GB
        assert module.peak_bandwidth / TB == pytest.approx(1.088)

    def test_lpddr_capacity_advantage_16x_over_gddr6(self):
        # §I: "16x larger capacity ... than GDDR6-based CXL memory".
        assert lpddr5x_module().capacity_bytes \
            == 16 * build_module("GDDR6").capacity_bytes

    def test_lpddr_bandwidth_advantage_over_ddr5(self):
        # §I: "10x higher bandwidth than ... DDR5-based CXL memory".
        ratio = lpddr5x_module().peak_bandwidth \
            / build_module("DDR5").peak_bandwidth
        assert ratio == pytest.approx(12.1, abs=0.2)


class TestFormFactorConstraints:
    def test_too_many_packages_rejected(self):
        with pytest.raises(FormFactorError):
            MemoryModule(technology=get_technology("LPDDR5X"),
                         num_packages=9)

    def test_zero_packages_rejected(self):
        with pytest.raises(FormFactorError):
            validate_composition(get_technology("DDR5"), 0)

    def test_hhhl_halves_lpddr_packages(self):
        assert max_packages(get_technology("LPDDR5X"), HHHL) == 4

    def test_hbm_limited_by_sip_not_traces(self):
        assert max_packages(get_technology("HBM3"), FHHL) \
            == FHHL.sip_package_limit

    def test_gddr6_limited_by_trace_budget(self):
        # 16 x32 packages at 2x trace cost exhaust the 1024-trace budget.
        assert max_packages(get_technology("GDDR6"), FHHL) == 16

    def test_partial_module_allowed(self):
        module = MemoryModule(technology=get_technology("LPDDR5X"),
                              num_packages=4)
        assert module.capacity_bytes == 256 * GB


class TestCostModel:
    def test_tsv_premium_exceeds_wire_bond(self):
        tsv = packaging_cost_factor(get_technology("DDR5"))
        wire = packaging_cost_factor(get_technology("LPDDR5X"))
        assert tsv > wire > 1.0 - 1e-9

    def test_module_dram_cost_positive(self):
        assert lpddr5x_module().dram_cost_usd > 0
