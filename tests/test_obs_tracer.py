"""Span tracer: nesting, two clocks, thread safety, no-op path."""

import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    SIM_CLOCK,
    Tracer,
    WALL_CLOCK,
    get_metrics,
    get_tracer,
    observe,
)
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.tracer import NULL_SPAN


class TestNesting:
    def test_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer", category="runtime"):
            with tracer.span("inner", category="runtime"):
                pass
        spans = {s.name: s for s in tracer.spans}
        assert spans["outer"].depth == 0
        assert spans["outer"].parent_id is None
        assert spans["inner"].depth == 1
        assert spans["inner"].parent_id == spans["outer"].span_id

    def test_inner_closes_first_and_nests_in_time(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans
        assert (inner.name, outer.name) == ("inner", "outer")
        assert outer.start_ns <= inner.start_ns
        assert (inner.start_ns + inner.dur_ns
                <= outer.start_ns + outer.dur_ns)

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        spans = {s.name: s for s in tracer.spans}
        assert spans["a"].parent_id == spans["outer"].span_id
        assert spans["b"].parent_id == spans["outer"].span_id
        assert spans["a"].depth == spans["b"].depth == 1

    def test_args_via_set(self):
        tracer = Tracer()
        with tracer.span("s", category="runtime", static=1) as span:
            span.set(dynamic=2)
        (record,) = tracer.spans
        assert record.args == {"static": 1, "dynamic": 2}


class TestSimSpans:
    def test_explicit_position_in_nanoseconds(self):
        tracer = Tracer()
        tracer.sim_span("op", start_s=2e-6, dur_s=1.5e-6, track="pnm.VPU",
                        category="accelerator")
        (span,) = tracer.spans
        assert span.clock == SIM_CLOCK
        assert span.start_ns == 2000
        assert span.dur_ns == 1500
        assert span.track == "pnm.VPU"

    def test_wall_and_sim_coexist(self):
        tracer = Tracer()
        with tracer.span("wall-side"):
            tracer.sim_span("sim-side", 0.0, 1e-9, track="t")
        clocks = sorted(s.clock for s in tracer.spans)
        assert clocks == [SIM_CLOCK, WALL_CLOCK]

    def test_categories(self):
        tracer = Tracer()
        tracer.sim_span("a", 0, 1e-9, track="t", category="cxl")
        tracer.sim_span("b", 0, 1e-9, track="t", category="accelerator")
        assert tracer.categories() == ("accelerator", "cxl")


class TestThreadSafety:
    def test_threads_nest_independently(self):
        tracer = Tracer()

        def work(tag):
            with tracer.span(f"outer-{tag}"):
                with tracer.span(f"inner-{tag}"):
                    pass

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = {s.name: s for s in tracer.spans}
        assert len(spans) == 16
        for i in range(8):
            assert spans[f"inner-{i}"].parent_id \
                == spans[f"outer-{i}"].span_id
            assert spans[f"outer-{i}"].depth == 0


class TestNullPath:
    def test_null_tracer_is_shared_and_inert(self):
        assert NULL_TRACER.span("x") is NULL_TRACER.span("y") is NULL_SPAN
        with NULL_TRACER.span("x") as span:
            span.set(ignored=True)
        NULL_TRACER.sim_span("x", 0.0, 1.0, track="t")
        assert NULL_TRACER.spans == ()
        assert not NULL_TRACER.enabled

    def test_clear(self):
        tracer = Tracer()
        tracer.sim_span("x", 0, 1e-9, track="t")
        tracer.clear()
        assert tracer.spans == ()


class TestAmbientResolution:
    def test_defaults_to_null_singletons(self):
        assert get_tracer() is NULL_TRACER
        assert get_metrics() is NULL_REGISTRY

    def test_observe_installs_and_restores(self):
        with observe() as (tracer, metrics):
            assert get_tracer() is tracer
            assert get_metrics() is metrics
        assert get_tracer() is NULL_TRACER
        assert get_metrics() is NULL_REGISTRY

    def test_injection_wins_over_ambient(self):
        private = Tracer()
        with observe():
            assert get_tracer(private) is private

    def test_observe_nests(self):
        with observe() as (outer, _):
            with observe() as (inner, _m):
                assert get_tracer() is inner
            assert get_tracer() is outer


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
