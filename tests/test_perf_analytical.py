"""Analytical performance model: rooflines, integration, energy."""

import pytest

from repro.accelerator import CXLPNMDevice
from repro.errors import ConfigurationError
from repro.gpu import A100_40G
from repro.llm import OPT_13B, OPT_1_3B, tiny_config
from repro.llm.ops import matmul_op, vector_op, OpKind
from repro.perf.analytical import (
    GpuPerfModel,
    InferenceTimer,
    PnmPerfModel,
    no_comm,
    stage_result,
)
from repro.perf.metrics import relative_delta


@pytest.fixture(scope="module")
def pnm():
    return PnmPerfModel(CXLPNMDevice())


@pytest.fixture(scope="module")
def gpu():
    return GpuPerfModel(A100_40G)


class TestPnmOpModel:
    def test_gemv_is_bandwidth_bound(self, pnm):
        op = matmul_op("v", m=1, n=5120, k=5120, dtype_bytes=2)
        t = pnm.op_time(op)
        mem_time = op.total_bytes / pnm.device.effective_memory_bandwidth
        assert t == pytest.approx(mem_time, rel=0.15)

    def test_wide_gemm_is_compute_bound(self, pnm):
        op = matmul_op("g", m=2048, n=5120, k=5120, dtype_bytes=2)
        t = pnm.op_time(op)
        compute_time = op.flops / pnm.device.spec.peak_gemm_flops
        assert t == pytest.approx(compute_time, rel=0.2)

    def test_vector_op_cheap(self, pnm):
        op = vector_op("ln", OpKind.LAYERNORM, elements=5120, dtype_bytes=2)
        assert pnm.op_time(op) < 1e-4

    def test_embedding_uses_dma(self, pnm):
        from repro.llm.graph import embedding_ops, StageShape
        op = embedding_ops(tiny_config(),
                           StageShape(batch_tokens=4, context_len=4))[0]
        assert pnm.op_time(op) > 0


class TestStageResult:
    def test_energy_positive_and_consistent(self, pnm):
        ops = [matmul_op("g", m=64, n=512, k=512, dtype_bytes=2)]
        result = stage_result("s", ops, pnm)
        assert result.energy_j > 0
        assert result.energy_j / result.time_s \
            <= pnm.device.spec.platform_max_watts

    def test_comm_included_in_time(self, pnm):
        ops = [matmul_op("g", m=64, n=512, k=512, dtype_bytes=2)]
        base = stage_result("s", ops, pnm)
        with_comm = stage_result("s", ops, pnm, comm_s=1e-3)
        assert with_comm.time_s == pytest.approx(base.time_s + 1e-3)


class TestInferenceTimer:
    def test_sampled_integration_matches_exact(self, pnm):
        timer = InferenceTimer(OPT_1_3B, pnm, gen_samples=12)
        approx = timer.run(16, 96)
        exact = timer.run(16, 96, exact=True)
        assert approx.gen_time_s == pytest.approx(exact.gen_time_s,
                                                  rel=0.01)
        assert approx.energy_j == pytest.approx(exact.energy_j, rel=0.01)

    def test_latency_monotone_in_output_tokens(self, pnm):
        timer = InferenceTimer(OPT_1_3B, pnm)
        latencies = [timer.run(64, n).latency_s for n in (1, 32, 256)]
        assert latencies == sorted(latencies)

    def test_tensor_parallel_speeds_up_gen(self, pnm):
        full = InferenceTimer(OPT_13B, pnm).gen_stage(512).time_s
        split = InferenceTimer(OPT_13B, pnm,
                               tensor_parallel=4).gen_stage(512).time_s
        assert split < full / 2

    def test_tp_energy_covers_group(self, pnm):
        single = InferenceTimer(OPT_13B, pnm).run(16, 8, exact=True)
        group = InferenceTimer(OPT_13B, pnm, tensor_parallel=4).run(
            16, 8, exact=True)
        # 4 devices each ~1/4 of the work: group energy stays comparable
        # (within 3x) of single-device energy, not 4x smaller.
        assert group.energy_j > single.energy_j / 3

    def test_comm_model_applied_per_stage(self, pnm):
        flat = InferenceTimer(OPT_1_3B, pnm).run(16, 8, exact=True)
        slow = InferenceTimer(OPT_1_3B, pnm,
                              comm=lambda tokens: 1e-3).run(16, 8,
                                                            exact=True)
        assert slow.latency_s == pytest.approx(flat.latency_s + 8e-3,
                                               rel=0.05)

    def test_invalid_parameters_rejected(self, pnm):
        with pytest.raises(ConfigurationError):
            InferenceTimer(OPT_1_3B, pnm, tensor_parallel=0)
        with pytest.raises(ConfigurationError):
            InferenceTimer(OPT_1_3B, pnm, gen_samples=1)
        with pytest.raises(ConfigurationError):
            InferenceTimer(OPT_1_3B, pnm).run(0, 8)


class TestMetricsDerivation:
    def test_inference_result_derived_metrics(self, gpu):
        result = InferenceTimer(OPT_1_3B, gpu).run(64, 128)
        assert result.latency_s == pytest.approx(
            result.sum_time_s + result.gen_time_s)
        assert result.tokens_per_s == pytest.approx(
            128 / result.latency_s)
        assert result.mean_power_w == pytest.approx(
            result.energy_j / result.latency_s)
        assert result.ms_per_token == pytest.approx(
            1e3 * result.latency_s / 128)

    def test_relative_delta(self):
        assert relative_delta(110, 100) == pytest.approx(0.1)
        with pytest.raises(ConfigurationError):
            relative_delta(1, 0)
