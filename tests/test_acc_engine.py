"""Functional executor: per-instruction semantics vs numpy."""

import numpy as np
import pytest

from repro.accelerator import DeviceMemory, Executor, isa
from repro.errors import ExecutionError
from repro.llm.reference import gelu, layernorm, softmax
from repro.units import MiB


@pytest.fixture()
def env():
    mem = DeviceMemory(8 * MiB)
    return mem, Executor(mem)


def _store(mem, name, arr):
    return mem.store_named(name, np.asarray(arr, dtype=np.float32))


class TestDma:
    def test_load_store_roundtrip(self, env):
        mem, ex = env
        src = _store(mem, "src", np.arange(6).reshape(2, 3))
        dst = mem.alloc_tensor("dst", (2, 3))
        ex.execute([
            isa.DmaLoad(dst="m0", addr=src.addr, shape=(2, 3)),
            isa.DmaStore(src="m0", addr=dst.addr, shape=(2, 3)),
        ])
        np.testing.assert_array_equal(mem.read_tensor(dst.addr, (2, 3)),
                                      np.arange(6).reshape(2, 3))

    def test_gather(self, env):
        mem, ex = env
        table = np.arange(20, dtype=np.float32).reshape(5, 4)
        region = _store(mem, "table", table)
        ex.execute([isa.DmaGather(dst="m0", table_addr=region.addr,
                                  row_elems=4, indices=(3, 0, 3))])
        np.testing.assert_array_equal(ex.registers.read("m0"),
                                      table[[3, 0, 3]])


class TestMatmuls:
    def test_mv_matches_numpy(self, env):
        mem, ex = env
        rng = np.random.default_rng(0)
        w = rng.standard_normal((8, 5)).astype(np.float32)
        x = rng.standard_normal((1, 8)).astype(np.float32)
        wr = _store(mem, "w", w)
        xr = _store(mem, "x", x)
        ex.execute([
            isa.DmaLoad(dst="m0", addr=xr.addr, shape=(1, 8)),
            isa.MpuMv(dst="m1", act="m0", weight_addr=wr.addr, k=8, n=5),
        ])
        np.testing.assert_array_equal(ex.registers.read("m1"), x @ w)

    def test_mm_pea_matches_numpy(self, env):
        mem, ex = env
        rng = np.random.default_rng(1)
        w = rng.standard_normal((6, 7)).astype(np.float32)
        x = rng.standard_normal((3, 6)).astype(np.float32)
        wr, xr = _store(mem, "w", w), _store(mem, "x", x)
        ex.execute([
            isa.DmaLoad(dst="m0", addr=xr.addr, shape=(3, 6)),
            isa.MpuMmPea(dst="m1", act="m0", weight_addr=wr.addr,
                         m=3, k=6, n=7),
        ])
        np.testing.assert_array_equal(ex.registers.read("m1"), x @ w)

    def test_redumax_writes_row_maxima(self, env):
        mem, ex = env
        w = np.eye(4, dtype=np.float32)
        x = np.array([[1, 5, 2, 0], [9, 3, 3, 3]], dtype=np.float32)
        wr, xr = _store(mem, "w", w), _store(mem, "x", x)
        ex.execute([
            isa.DmaLoad(dst="m0", addr=xr.addr, shape=(2, 4)),
            isa.MpuMmRedumaxPea(dst="m1", act="m0", weight_addr=wr.addr,
                                m=2, k=4, n=4, rowmax_dst="v0"),
        ])
        np.testing.assert_array_equal(
            ex.registers.read("v0").ravel(), [5.0, 9.0])

    def test_shape_mismatch_raises(self, env):
        mem, ex = env
        xr = _store(mem, "x", np.zeros((2, 4)))
        with pytest.raises(ExecutionError):
            ex.execute([
                isa.DmaLoad(dst="m0", addr=xr.addr, shape=(2, 4)),
                isa.MpuMmPea(dst="m1", act="m0", weight_addr=0, m=3, k=4,
                             n=2),
            ])


class TestAttention:
    def _setup(self, mem, heads, hd, ctx, m, seed=2):
        rng = np.random.default_rng(seed)
        d = heads * hd
        q = rng.standard_normal((m, d)).astype(np.float32)
        k = rng.standard_normal((ctx, d)).astype(np.float32)
        v = rng.standard_normal((ctx, d)).astype(np.float32)
        return (q, k, v, _store(mem, "q", q), _store(mem, "k", k),
                _store(mem, "v", v))

    def test_masked_scores_match_reference_math(self, env):
        mem, ex = env
        heads, hd, ctx, m = 2, 4, 5, 3
        q, k, v, qr, kr, vr = self._setup(mem, heads, hd, ctx, m)
        scale = 0.5
        ex.execute([
            isa.DmaLoad(dst="m0", addr=qr.addr, shape=(m, heads * hd)),
            isa.MpuMaskedMm(dst="m1", q="m0", k_addr=kr.addr, heads=heads,
                            head_dim=hd, ctx=ctx, m=m, scale=scale,
                            mask_offset=2),
        ])
        scores = ex.registers.read("m1")
        from repro.llm.reference import causal_mask
        mask = causal_mask(m, ctx, 2)
        for h in range(heads):
            sl = slice(h * hd, (h + 1) * hd)
            expect = (q[:, sl] @ k[:, sl].T) * np.float32(scale)
            expect = np.where(mask, expect, np.float32(-1e9))
            np.testing.assert_array_equal(scores[h], expect)

    def test_context_concatenates_heads(self, env):
        mem, ex = env
        heads, hd, ctx, m = 2, 3, 4, 2
        q, k, v, qr, kr, vr = self._setup(mem, heads, hd, ctx, m)
        probs = softmax(np.random.default_rng(3).standard_normal(
            (heads, m, ctx)).astype(np.float32))
        pr = _store(mem, "p", probs)
        ex.execute([
            isa.DmaLoad(dst="m0", addr=pr.addr, shape=(heads, m, ctx)),
            isa.MpuAttnContext(dst="m1", probs="m0", v_addr=vr.addr,
                               heads=heads, head_dim=hd, ctx=ctx, m=m),
        ])
        out = ex.registers.read("m1")
        for h in range(heads):
            sl = slice(h * hd, (h + 1) * hd)
            np.testing.assert_allclose(out[:, sl], probs[h] @ v[:, sl],
                                       rtol=1e-6)


class TestVpu:
    def test_gelu_softmax_layernorm_match_reference(self, env):
        mem, ex = env
        x = np.random.default_rng(4).standard_normal((3, 8)).astype(
            np.float32)
        g = np.full(8, 1.5, dtype=np.float32)
        b = np.full(8, -0.5, dtype=np.float32)
        xr, gr, br = _store(mem, "x", x), _store(mem, "g", g), \
            _store(mem, "b", b)
        ex.execute([
            isa.DmaLoad(dst="m0", addr=xr.addr, shape=(3, 8)),
            isa.VpuGelu(dst="m1", src="m0"),
            isa.VpuSoftmax(dst="m2", src="m0"),
            isa.VpuLayerNorm(dst="m3", src="m0", gamma_addr=gr.addr,
                             beta_addr=br.addr, n=8),
        ])
        np.testing.assert_array_equal(ex.registers.read("m1"), gelu(x))
        np.testing.assert_array_equal(ex.registers.read("m2"), softmax(x))
        np.testing.assert_array_equal(ex.registers.read("m3"),
                                      layernorm(x, g, b))

    def test_softmax_with_precomputed_max_equals_plain(self, env):
        mem, ex = env
        x = np.random.default_rng(5).standard_normal((2, 6)).astype(
            np.float32)
        xr = _store(mem, "x", x)
        ex.execute([
            isa.DmaLoad(dst="m0", addr=xr.addr, shape=(2, 6)),
            isa.VpuSoftmax(dst="m1", src="m0"),
        ])
        plain = ex.registers.read("m1").copy()
        ex2 = Executor(mem, None)
        w = np.eye(6, dtype=np.float32)
        wr = _store(mem, "eye", w)
        ex2.execute([
            isa.DmaLoad(dst="m0", addr=xr.addr, shape=(2, 6)),
            isa.MpuMmRedumaxPea(dst="m2", act="m0", weight_addr=wr.addr,
                                m=2, k=6, n=6, rowmax_dst="v0"),
            isa.VpuSoftmax(dst="m1", src="m2", rowmax="v0"),
        ])
        np.testing.assert_array_equal(ex2.registers.read("m1"), plain)

    def test_slice_row_argmax(self, env):
        mem, ex = env
        x = np.array([[1, 9, 2, 4], [7, 0, 3, 8]], dtype=np.float32)
        xr = _store(mem, "x", x)
        ex.execute([
            isa.DmaLoad(dst="m0", addr=xr.addr, shape=(2, 4)),
            isa.VpuSlice(dst="m1", src="m0", start=1, stop=3),
            isa.VpuRow(dst="m2", src="m0", row=-1),
            isa.VpuArgmax(dst="s0", src="m0"),
        ])
        np.testing.assert_array_equal(ex.registers.read("m1"), x[:, 1:3])
        np.testing.assert_array_equal(ex.registers.read("m2"), x[1:2])
        assert int(ex.registers.read("s0")[0]) == 3  # argmax of last row

    def test_scale_add_mul_bias(self, env):
        mem, ex = env
        a = np.array([[1.0, 2.0]], dtype=np.float32)
        b = np.array([[3.0, 5.0]], dtype=np.float32)
        bias = np.array([10.0, 20.0], dtype=np.float32)
        ar, br_, biasr = _store(mem, "a", a), _store(mem, "b", b), \
            _store(mem, "bias", bias)
        ex.execute([
            isa.DmaLoad(dst="m0", addr=ar.addr, shape=(1, 2)),
            isa.DmaLoad(dst="m1", addr=br_.addr, shape=(1, 2)),
            isa.VpuAdd(dst="m2", a="m0", b="m1"),
            isa.VpuMul(dst="m3", a="m0", b="m1"),
            isa.VpuScale(dst="m4", src="m0", constant=2.0),
            isa.VpuBias(dst="m5", src="m0", bias_addr=biasr.addr, n=2),
        ])
        np.testing.assert_array_equal(ex.registers.read("m2"), a + b)
        np.testing.assert_array_equal(ex.registers.read("m3"), a * b)
        np.testing.assert_array_equal(ex.registers.read("m4"), a * 2)
        np.testing.assert_array_equal(ex.registers.read("m5"), a + bias)


class TestConv2d:
    def test_conv_matches_direct_convolution(self, env):
        mem, ex = env
        rng = np.random.default_rng(6)
        x = rng.standard_normal((2, 5, 5)).astype(np.float32)
        w = rng.standard_normal((3, 2, 2, 2)).astype(np.float32)
        xr, wr = _store(mem, "x", x), _store(mem, "w", w)
        ex.execute([
            isa.DmaLoad(dst="m0", addr=xr.addr, shape=(2, 5, 5)),
            isa.MpuConv2d(dst="m1", act="m0", weight_addr=wr.addr,
                          in_ch=2, out_ch=3, kh=2, kw=2, h=5, w=5),
        ])
        out = ex.registers.read("m1")
        expect = np.zeros((3, 4, 4), dtype=np.float32)
        for o in range(3):
            for i in range(4):
                for j in range(4):
                    expect[o, i, j] = np.sum(
                        x[:, i:i + 2, j:j + 2] * w[o])
        np.testing.assert_allclose(out, expect, rtol=1e-5, atol=1e-6)

    def test_conv_gelu_fusion(self, env):
        mem, ex = env
        rng = np.random.default_rng(7)
        x = rng.standard_normal((1, 4, 4)).astype(np.float32)
        w = rng.standard_normal((1, 1, 2, 2)).astype(np.float32)
        xr, wr = _store(mem, "x", x), _store(mem, "w", w)
        ex.execute([
            isa.DmaLoad(dst="m0", addr=xr.addr, shape=(1, 4, 4)),
            isa.MpuConv2d(dst="m1", act="m0", weight_addr=wr.addr,
                          in_ch=1, out_ch=1, kh=2, kw=2, h=4, w=4),
            isa.MpuConv2d(dst="m2", act="m0", weight_addr=wr.addr,
                          in_ch=1, out_ch=1, kh=2, kw=2, h=4, w=4,
                          gelu=True),
        ])
        plain = ex.registers.read("m1")
        fused = ex.registers.read("m2")
        np.testing.assert_allclose(fused, gelu(plain), rtol=1e-6)


class TestTransposeAndStats:
    def test_transpose(self, env):
        mem, ex = env
        x = np.arange(6, dtype=np.float32).reshape(2, 3)
        xr = _store(mem, "x", x)
        ex.execute([
            isa.DmaLoad(dst="m0", addr=xr.addr, shape=(2, 3)),
            isa.MpuTranspose(dst="m1", src="m0"),
        ])
        np.testing.assert_array_equal(ex.registers.read("m1"), x.T)

    def test_stats_accumulate(self, env):
        mem, ex = env
        xr = _store(mem, "x", np.zeros((2, 2)))
        stats = ex.execute([
            isa.DmaLoad(dst="m0", addr=xr.addr, shape=(2, 2)),
            isa.VpuGelu(dst="m1", src="m0"),
            isa.Free(regs=("m0", "m1")),
        ])
        assert stats.instructions == 3
        assert stats.by_opcode["DMA_LOAD"] == 1
        assert stats.mem_elems >= 4

    def test_free_releases_registers(self, env):
        mem, ex = env
        xr = _store(mem, "x", np.zeros((2, 2)))
        ex.execute([
            isa.DmaLoad(dst="m0", addr=xr.addr, shape=(2, 2)),
            isa.Free(regs=("m0",)),
        ])
        assert "m0" not in ex.registers
