"""Batched generation op graphs and capacity math."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, ParallelismError
from repro.llm import OPT_13B, tiny_config
from repro.llm.batching import (
    batch_kv_bytes,
    batched_gen_stage_ops,
    max_batch_for_memory,
)
from repro.llm.graph import gen_stage_ops
from repro.llm.ops import OpKind, total_flops, total_weight_bytes
from repro.units import GB


class TestBatchedOps:
    def test_batch_one_matches_unbatched_weights(self):
        ctx = 576
        batched = total_weight_bytes(batched_gen_stage_ops(OPT_13B, ctx, 1))
        plain = total_weight_bytes(gen_stage_ops(OPT_13B, ctx))
        assert batched == pytest.approx(plain, rel=0.01)

    def test_batch_one_matches_unbatched_exactly(self):
        """Regression: the embedding used to be built with
        ``StageShape(batch, max(batch, context_len))``, conflating the
        batch with the attention span.  Batch=1 must now reduce to the
        unbatched gen-stage graph op for op."""
        ctx = 576
        assert batched_gen_stage_ops(OPT_13B, ctx, 1) \
            == gen_stage_ops(OPT_13B, ctx)

    def test_embedding_scales_with_batch_not_context(self):
        """Each sequence embeds exactly one new token per decode step,
        whatever its context length."""
        def embed_bytes(ctx, batch):
            ops = batched_gen_stage_ops(OPT_13B, ctx, batch)
            return sum(op.weight_bytes for op in ops
                       if op.name.startswith("embed"))

        assert embed_bytes(64, 4) == embed_bytes(1024, 4)
        assert embed_bytes(64, 8) == 2 * embed_bytes(64, 4)

    def test_weights_stream_once_regardless_of_batch(self):
        """The point of batching: parameter traffic is batch-invariant,
        only KV traffic scales."""
        ctx = 576
        b1 = total_weight_bytes(batched_gen_stage_ops(OPT_13B, ctx, 1))
        b16 = total_weight_bytes(batched_gen_stage_ops(OPT_13B, ctx, 16))
        kv_extra = 15 * ctx * OPT_13B.kv_bytes_per_token()
        assert b16 - b1 == pytest.approx(kv_extra, rel=0.02)

    def test_flops_scale_linearly_with_batch(self):
        ctx = 128
        f1 = total_flops(batched_gen_stage_ops(OPT_13B, ctx, 1))
        f8 = total_flops(batched_gen_stage_ops(OPT_13B, ctx, 8))
        assert f8 == pytest.approx(8 * f1, rel=0.02)

    def test_weight_matmuls_become_gemm(self):
        ops = batched_gen_stage_ops(OPT_13B, 128, 8)
        qkv = [op for op in ops if op.name.endswith(".qkv")][0]
        assert qkv.kind is OpKind.GEMM
        assert qkv.m == 8

    def test_attention_stays_gemv(self):
        ops = batched_gen_stage_ops(OPT_13B, 128, 8)
        score = [op for op in ops if "attn_score" in op.name][0]
        assert score.kind is OpKind.GEMV

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            batched_gen_stage_ops(OPT_13B, 128, 0)
        with pytest.raises(ParallelismError):
            batched_gen_stage_ops(OPT_13B, 128, 2, tensor_parallel=7)


class TestCapacity:
    def test_kv_bytes(self):
        cfg = tiny_config()
        assert batch_kv_bytes(cfg, 10, 4) == \
            4 * 10 * cfg.kv_bytes_per_token()

    def test_max_batch_zero_when_params_overflow(self):
        assert max_batch_for_memory(OPT_13B, int(10e9), 1024) == 0

    def test_cxl_pnm_holds_large_batches(self):
        batch = max_batch_for_memory(OPT_13B, 512 * GB, 1088)
        # (512 - 25.7) GB of KV room / ~0.89 MB per token-row.
        assert batch > 400

    def test_gpu_holds_far_fewer(self):
        gpu_batch = max_batch_for_memory(OPT_13B, int(40e9), 1088)
        pnm_batch = max_batch_for_memory(OPT_13B, 512 * GB, 1088)
        assert pnm_batch > 10 * gpu_batch

    @settings(max_examples=20, deadline=None)
    @given(batch=st.integers(1, 32), ctx=st.integers(1, 64))
    def test_kv_bytes_monotone(self, batch, ctx):
        cfg = tiny_config()
        assert batch_kv_bytes(cfg, ctx, batch) \
            <= batch_kv_bytes(cfg, ctx + 1, batch + 1)
