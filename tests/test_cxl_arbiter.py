"""Host/PNM arbitration: the (D3) comparison."""

import pytest

from repro.cxl import (
    Arbiter,
    ArbitrationPolicy,
    RequestStream,
    Source,
    compare_policies,
)
from repro.errors import ConfigurationError

BW = 100e9  # 100 GB/s memory for round numbers


def _streams(host_gb: float, pnm_gb: float):
    return (RequestStream(Source.HOST, host_gb * 1e9 / 64),
            RequestStream(Source.PNM, pnm_gb * 1e9 / 64))


class TestHardwareWrr:
    def test_undersubscribed_everyone_served(self):
        arbiter = Arbiter(memory_bandwidth=BW)
        host, pnm = _streams(20, 30)
        stats = arbiter.simulate(ArbitrationPolicy.HARDWARE_WRR, host, pnm,
                                 pnm_task_s=1e-3, interval_s=1.0)
        assert stats.bandwidth(Source.HOST, 1.0) == pytest.approx(20e9)
        assert stats.bandwidth(Source.PNM, 1.0) == pytest.approx(30e9)
        assert stats.host_blocked_s == 0.0

    def test_oversubscribed_splits_by_weight(self):
        arbiter = Arbiter(memory_bandwidth=BW, pnm_weight=0.5)
        host, pnm = _streams(80, 80)
        stats = arbiter.simulate(ArbitrationPolicy.HARDWARE_WRR, host, pnm,
                                 1e-3, 1.0)
        assert stats.bandwidth(Source.HOST, 1.0) == pytest.approx(50e9)
        assert stats.bandwidth(Source.PNM, 1.0) == pytest.approx(50e9)

    def test_slack_redistributed(self):
        arbiter = Arbiter(memory_bandwidth=BW, pnm_weight=0.5)
        host, pnm = _streams(10, 200)
        stats = arbiter.simulate(ArbitrationPolicy.HARDWARE_WRR, host, pnm,
                                 1e-3, 1.0)
        assert stats.bandwidth(Source.HOST, 1.0) == pytest.approx(10e9)
        assert stats.bandwidth(Source.PNM, 1.0) == pytest.approx(90e9)


class TestBlockingPoll:
    def test_host_blocked_while_tasks_run(self):
        arbiter = Arbiter(memory_bandwidth=BW)
        host, pnm = _streams(40, 40)
        stats = arbiter.simulate(ArbitrationPolicy.BLOCKING_POLL, host, pnm,
                                 pnm_task_s=1e-3, interval_s=1.0)
        assert stats.host_blocked_s > 0.9

    def test_host_wait_scales_with_task_length(self):
        arbiter = Arbiter(memory_bandwidth=BW)
        host, pnm = _streams(40, 40)
        short = arbiter.simulate(ArbitrationPolicy.BLOCKING_POLL, host, pnm,
                                 pnm_task_s=1e-4, interval_s=1.0)
        long = arbiter.simulate(ArbitrationPolicy.BLOCKING_POLL, host, pnm,
                                pnm_task_s=1e-2, interval_s=1.0)
        assert long.mean_wait_s[Source.HOST] \
            > short.mean_wait_s[Source.HOST]

    def test_trailing_partial_task_window_counted(self):
        """Regression: at interval = 1.5 cycles, the second (truncated)
        task used to be dropped by the ``interval // cycle`` floor,
        under-counting both PNM bytes and host blocked time."""
        arbiter = Arbiter(memory_bandwidth=BW)
        host, pnm = _streams(200, 200)  # both saturate the memory
        task = 1e-3
        cycle = task + arbiter.poll_interval_s / 2.0
        interval = 1.5 * cycle
        stats = arbiter.simulate(ArbitrationPolicy.BLOCKING_POLL, host, pnm,
                                 pnm_task_s=task, interval_s=interval)
        # Tasks run back-to-back, so the host is starved for the whole
        # interval: one full task plus a truncated second one.
        assert stats.host_blocked_s == pytest.approx(interval)
        assert stats.served_bytes[Source.HOST] == 0.0
        tail_task = min(0.5 * cycle, task)
        assert stats.served_bytes[Source.PNM] \
            == pytest.approx(BW * (task + tail_task))

    def test_interval_shorter_than_one_task(self):
        """Even a sub-task interval serves (and blocks) proportionally."""
        arbiter = Arbiter(memory_bandwidth=BW)
        host, pnm = _streams(200, 200)
        task = 1e-3
        interval = 0.25 * task
        stats = arbiter.simulate(ArbitrationPolicy.BLOCKING_POLL, host, pnm,
                                 pnm_task_s=task, interval_s=interval)
        assert stats.host_blocked_s == pytest.approx(interval)
        assert stats.served_bytes[Source.PNM] \
            == pytest.approx(BW * interval)


class TestD3Comparison:
    def test_hardware_arbitration_beats_blocking_for_host(self):
        """The paper's D3: CXL-PNM's hardware arbiter vs DIMM-PNM's
        blocking+polling. The host must see both more bandwidth and lower
        wait under the hardware arbiter."""
        results = compare_policies(memory_bandwidth=BW, host_rate=40e9 / 64,
                                   pnm_rate=40e9 / 64, pnm_task_s=1e-3)
        wrr = results[ArbitrationPolicy.HARDWARE_WRR.value]
        blocking = results[ArbitrationPolicy.BLOCKING_POLL.value]
        assert wrr.served_bytes[Source.HOST] \
            > 2 * blocking.served_bytes[Source.HOST]
        assert wrr.mean_wait_s[Source.HOST] \
            < blocking.mean_wait_s[Source.HOST] / 10


class TestValidation:
    def test_bad_bandwidth(self):
        with pytest.raises(ConfigurationError):
            Arbiter(memory_bandwidth=0)

    def test_bad_weight(self):
        with pytest.raises(ConfigurationError):
            Arbiter(memory_bandwidth=BW, pnm_weight=1.0)

    def test_bad_interval(self):
        arbiter = Arbiter(memory_bandwidth=BW)
        host, pnm = _streams(1, 1)
        with pytest.raises(ConfigurationError):
            arbiter.simulate(ArbitrationPolicy.HARDWARE_WRR, host, pnm,
                             1e-3, 0.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestStream(Source.HOST, -1.0)
