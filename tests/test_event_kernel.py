"""Event-driven serving kernel: satellite-bug regressions and A/B.

Each regression pins a timing bug the global iteration barrier used to
hide (idle-stall deferral, completion-time inflation, dead-device
capacity, ``id()``-keyed failover attribution), with the hand-computed
timeline in comments.  The A/B suite then asserts the event kernel and
the legacy ``engine="barrier"`` kernel agree on single-device
workloads — timelines bit-identical; ``max_occupancy`` may differ by
the documented transient-overlap delta (DESIGN.md).
"""

import pytest

from repro.appliance import (
    ContinuousBatchScheduler,
    PnmAppliance,
    poisson_arrivals,
)
from repro.faults import FaultPlan, chaos
from repro.llm import OPT_1_3B, InferenceRequest, peak_kv_bytes, tiny_config

CFG = tiny_config()


class ConstStep:
    """Hand-computable step model: fixed prefill and decode costs."""

    def __init__(self, prefill=1.0, decode=0.5):
        self.prefill = prefill
        self.decode = decode

    def prefill_s(self, input_len):
        return self.prefill

    def decode_step_s(self, batch, context_len):
        return self.decode


class LenStep(ConstStep):
    """Prefill cost proportional to input length (skews devices)."""

    def prefill_s(self, input_len):
        return float(input_len)


def _memory_for(batch, input_len=8, output_len=6):
    return CFG.param_bytes + batch * peak_kv_bytes(CFG, input_len,
                                                   output_len)


def _requests(n, input_len=4, output_len=3):
    return [InferenceRequest(input_len, output_len, request_id=i)
            for i in range(n)]


def _run(engine, step=None, requests=None, arrivals=None, memory=None,
         **kwargs):
    scheduler = ContinuousBatchScheduler(
        step or ConstStep(), CFG, memory or _memory_for(8),
        engine=engine, **kwargs)
    return scheduler.run(requests or _requests(4), arrivals)


class TestIdleStallElapses:
    """Satellite 1: stalls elapse in simulated time, busy or not."""

    # r0=(4,3) at t=0: prefill [0,1], decodes [1,1.5],[1.5,2] -> done
    # at 2.  STALL at t=10 for 3 s hits an idle device and is over by
    # t=13, long before r1 arrives at t=100: prefill [100,101],
    # decodes -> done at 102.
    PLAN = FaultPlan().with_device_stall(at_s=10.0, duration_s=3.0)

    def _stalled(self, engine, arrivals):
        with chaos(self.PLAN):
            return _run(engine, requests=_requests(2),
                        arrivals=arrivals)

    def test_stall_absorbed_by_idle_time(self):
        stats = self._stalled("event", [0.0, 100.0])
        late = max(stats.completed, key=lambda c: c.finish_s)
        assert late.start_s == pytest.approx(100.0)
        assert late.queue_wait_s == 0.0
        assert stats.makespan_s == pytest.approx(102.0)
        assert stats.stall_s == 3.0  # still elapsed, still counted

    def test_partially_absorbed_stall_delays_the_remainder(self):
        # r1 arrives at t=12, one second into the idle stall window
        # [10, 13]: its unit starts at 13, not 12 (and not 15).
        stats = self._stalled("event", [0.0, 12.0])
        late = max(stats.completed, key=lambda c: c.finish_s)
        assert late.start_s == pytest.approx(13.0)
        assert late.queue_wait_s == pytest.approx(1.0)

    def test_busy_stall_still_extends_makespan(self):
        # The pre-fix behaviour that was correct stays correct: a
        # stall during a busy stretch pushes everything after it out
        # by its full duration.
        plan = FaultPlan().with_device_stall(at_s=1.2, duration_s=3.0)
        base = _run("event")
        with chaos(plan):
            stalled = _run("event")
        assert stalled.makespan_s == pytest.approx(base.makespan_s + 3.0)

    def test_barrier_kernel_still_defers_the_stall(self):
        # The documented failing-before: the barrier kernel parks the
        # idle stall in stall_pending and charges it to r1's first
        # busy iteration, inflating the makespan by the full 3 s.
        stats = self._stalled("barrier", [0.0, 100.0])
        assert stats.makespan_s == pytest.approx(105.0)


class TestFinishAtOwnDevice:
    """Satellite 2: finish_s is the finishing device's own step end."""

    # Two prefill-only requests at t=0 on two devices, prefill cost
    # = input_len: r0=(8,1) lands on device 0 and ends at 8, r1=(2,1)
    # lands on device 1 and ends at 2.  The old code stamped both with
    # the slowest device's iteration end (8).
    @pytest.mark.parametrize("engine", ["event", "barrier"])
    def test_fast_device_finish_not_inflated(self, engine):
        stats = _run(engine, step=LenStep(),
                     requests=[InferenceRequest(8, 1, request_id=0),
                               InferenceRequest(2, 1, request_id=1)],
                     memory=_memory_for(4), num_devices=2)
        by_id = {c.request.request_id: c for c in stats.completed}
        assert by_id[0].finish_s == pytest.approx(8.0)
        assert by_id[1].finish_s == pytest.approx(2.0)
        assert stats.makespan_s == pytest.approx(8.0)


class TestDeadDeviceCapacity:
    """Satellite 3: failed devices stop accruing capacity."""

    # 4 requests (4,3) at t=0, 2 devices, max_batch=2: each device
    # prefills two requests [0,2] then decodes [2,3],[3,4].  Device 1
    # fails at 2.5 (its decode macro was fault-bounded to [2,3] and
    # then cancelled mid-flight): its two victims lose their KV caches,
    # requeue, and wait for device 0's slots.  Re-admitted at t=4 they
    # re-run prefill [4,5],[5,6] and decode [6,7],[7,8] -> makespan 8.
    #
    #   lost_device_s = 8 - 2.5 = 5.5
    #   busy_s        = d0: [0,4]+[4,8] = 8;  d1: [0,2] = 2  -> 10
    #   utilization   = 10 / (2*8 - 5.5) = 10/10.5
    PLAN = FaultPlan().with_device_failure(at_s=2.5, device=1)

    def _stats(self):
        with chaos(self.PLAN):
            return _run("event", step=ConstStep(prefill=1.0, decode=1.0),
                        requests=_requests(4), num_devices=2,
                        max_batch=2)

    def test_lost_device_seconds(self):
        stats = self._stats()
        assert len(stats.completed) == 4
        assert stats.makespan_s == pytest.approx(8.0)
        assert stats.devices_failed == 1
        assert stats.lost_device_s == pytest.approx(5.5)
        assert stats.as_dict()["lost_device_s"] == pytest.approx(5.5)

    def test_utilization_excludes_lost_capacity(self):
        stats = self._stats()
        assert stats.busy_s == pytest.approx(10.0)
        assert stats.available_device_s == pytest.approx(10.5)
        assert stats.instance_utilization == pytest.approx(10.0 / 10.5)
        # The failing-before denominator charged the dead device for
        # the whole makespan: 8/12, visibly below the fixed value.
        naive = stats.busy_s / (stats.makespan_s * stats.num_instances)
        assert stats.instance_utilization > naive

    def test_no_faults_means_no_lost_capacity(self):
        stats = _run("event")
        assert stats.lost_device_s == 0.0


class TestFailoverAttribution:
    """Satellite 4: duplicate request objects keep exact attribution."""

    # The same InferenceRequest *object* appears twice in the stream
    # (colliding id()); both copies land on device 1 and both are
    # requeued when it fails.  The old id()-keyed requeue_info table
    # overwrote one copy's entry, dropping a failover count and a
    # latency sample.
    @pytest.mark.parametrize("engine", ["event", "barrier"])
    def test_duplicate_object_failovers_both_counted(self, engine):
        dup = InferenceRequest(4, 3, request_id=1)
        big = InferenceRequest(8, 6, request_id=0)
        plan = FaultPlan().with_device_failure(at_s=0.5, device=1)
        with chaos(plan) as state:
            stats = _run(engine, requests=[big, dup, dup],
                         memory=_memory_for(4), num_devices=2)
        assert len(stats.completed) == 3
        assert stats.failovers == 2
        copies = [c for c in stats.completed if c.request is dup]
        assert [c.failovers for c in copies] == [1, 1]
        assert len(stats.failover_latencies_s) == 2
        assert state.counters.requests_requeued == 2


class TestKernelAB:
    """Event and barrier kernels agree on single-device workloads."""

    #: The one documented single-device delta: the event kernel admits
    #: at true arrival time, so a successor can overlap its
    #: predecessor's final in-flight step; the barrier removes
    #: completions before the next boundary's admissions ever see
    #: them.  Everything else must match exactly.
    DELTA_KEYS = {"max_occupancy"}

    def _pair(self, requests, arrivals, **kwargs):
        out = []
        for engine in ("event", "barrier"):
            stats = _run(engine, requests=requests, arrivals=arrivals,
                         **kwargs)
            out.append((stats.as_dict(),
                        [(c.request.request_id, c.start_s, c.finish_s,
                          c.first_token_s) for c in stats.completed]))
        return out

    def test_closed_batch_exact(self):
        (event, event_tl), (barrier, barrier_tl) = self._pair(
            _requests(6), None)
        assert event == barrier
        assert event_tl == barrier_tl

    @pytest.mark.parametrize("seed,rate", [(0, 0.5), (1, 2.0), (2, 8.0)])
    def test_poisson_streams_exact(self, seed, rate):
        arrivals = poisson_arrivals(10, rate, seed=seed)
        (event, event_tl), (barrier, barrier_tl) = self._pair(
            _requests(10), arrivals)
        assert event_tl == barrier_tl  # bit-identical, not approx
        for key in event:
            if key in self.DELTA_KEYS:
                assert event[key] >= barrier[key]
            else:
                assert event[key] == barrier[key], key

    def test_kv_pressure_exact(self):
        arrivals = poisson_arrivals(8, 2.0, seed=5)
        (event, event_tl), (barrier, barrier_tl) = self._pair(
            _requests(8), arrivals, memory=_memory_for(2, 4, 3))
        assert event == barrier  # tight KV: no transient overlap either
        assert event_tl == barrier_tl

    def test_mid_macro_arrival_truncates_to_step_boundary(self):
        # r0=(4,5): prefill [0,1], decode macro of 4 steps ending at
        # 1.5/2.0/2.5/3.0.  r1 arrives at 1.7 mid-macro: the event
        # kernel cuts the macro at 2.0 and starts r1's prefill there —
        # exactly where the barrier kernel admits it.
        requests = [InferenceRequest(4, 5, request_id=0),
                    InferenceRequest(4, 3, request_id=1)]
        for engine in ("event", "barrier"):
            stats = _run(engine, requests=requests,
                         arrivals=[0.0, 1.7])
            r1 = next(c for c in stats.completed
                      if c.request.request_id == 1)
            assert r1.start_s == pytest.approx(2.0), engine
            assert r1.first_token_s == pytest.approx(3.0), engine


class TestScaleSmoke:
    def test_many_requests_many_devices_deterministic(self):
        requests = _requests(600, input_len=4, output_len=3)
        arrivals = poisson_arrivals(600, 20.0, seed=9)
        runs = []
        for _ in range(2):
            stats = _run("event", requests=requests, arrivals=arrivals,
                         num_devices=4, max_batch=4)
            runs.append(stats.as_dict())
        assert runs[0] == runs[1]
        assert runs[0]["requests"] == 600.0
        assert runs[0]["rejected"] == 0.0

    def test_appliance_serve_entry_point(self):
        appliance = PnmAppliance(num_devices=2)
        requests = [InferenceRequest(16, 8, request_id=i)
                    for i in range(6)]
        stats = appliance.serve(OPT_1_3B, requests)
        assert len(stats.completed) == 6
        assert stats.num_instances == 2
