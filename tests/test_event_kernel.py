"""Event-driven serving kernel: satellite-bug regressions and timelines.

Each regression pins a timing bug the retired global-iteration barrier
kernel used to hide (idle-stall deferral, completion-time inflation,
dead-device capacity, ``id()``-keyed failover attribution), with the
hand-computed timeline in comments.  The timeline suite then asserts
the event kernel against fully hand-computed schedules — the cases
that used to A/B against ``engine="barrier"`` now carry the expected
numbers directly (the two kernels were bit-identical on these
workloads when the barrier retired, so the constants are the agreed
values).
"""

import pytest

from repro.appliance import (
    ContinuousBatchScheduler,
    PnmAppliance,
    poisson_arrivals,
)
from repro.faults import FaultPlan, chaos
from repro.llm import OPT_1_3B, InferenceRequest, peak_kv_bytes, tiny_config

CFG = tiny_config()


class ConstStep:
    """Hand-computable step model: fixed prefill and decode costs."""

    def __init__(self, prefill=1.0, decode=0.5):
        self.prefill = prefill
        self.decode = decode

    def prefill_s(self, input_len):
        return self.prefill

    def decode_step_s(self, batch, context_len):
        return self.decode


class LenStep(ConstStep):
    """Prefill cost proportional to input length (skews devices)."""

    def prefill_s(self, input_len):
        return float(input_len)


def _memory_for(batch, input_len=8, output_len=6):
    return CFG.param_bytes + batch * peak_kv_bytes(CFG, input_len,
                                                   output_len)


def _requests(n, input_len=4, output_len=3):
    return [InferenceRequest(input_len, output_len, request_id=i)
            for i in range(n)]


def _run(step=None, requests=None, arrivals=None, memory=None, **kwargs):
    scheduler = ContinuousBatchScheduler(
        step or ConstStep(), CFG, memory or _memory_for(8), **kwargs)
    return scheduler.run(requests or _requests(4), arrivals)


class TestIdleStallElapses:
    """Satellite 1: stalls elapse in simulated time, busy or not."""

    # r0=(4,3) at t=0: prefill [0,1], decodes [1,1.5],[1.5,2] -> done
    # at 2.  STALL at t=10 for 3 s hits an idle device and is over by
    # t=13, long before r1 arrives at t=100: prefill [100,101],
    # decodes -> done at 102.
    PLAN = FaultPlan().with_device_stall(at_s=10.0, duration_s=3.0)

    def _stalled(self, arrivals):
        with chaos(self.PLAN):
            return _run(requests=_requests(2), arrivals=arrivals)

    def test_stall_absorbed_by_idle_time(self):
        stats = self._stalled([0.0, 100.0])
        late = max(stats.completed, key=lambda c: c.finish_s)
        assert late.start_s == pytest.approx(100.0)
        assert late.queue_wait_s == 0.0
        assert stats.makespan_s == pytest.approx(102.0)
        assert stats.stall_s == 3.0  # still elapsed, still counted

    def test_partially_absorbed_stall_delays_the_remainder(self):
        # r1 arrives at t=12, one second into the idle stall window
        # [10, 13]: its unit starts at 13, not 12 (and not 15).
        stats = self._stalled([0.0, 12.0])
        late = max(stats.completed, key=lambda c: c.finish_s)
        assert late.start_s == pytest.approx(13.0)
        assert late.queue_wait_s == pytest.approx(1.0)

    def test_busy_stall_still_extends_makespan(self):
        # A stall during a busy stretch pushes everything after it out
        # by its full duration.
        plan = FaultPlan().with_device_stall(at_s=1.2, duration_s=3.0)
        base = _run()
        with chaos(plan):
            stalled = _run()
        assert stalled.makespan_s == pytest.approx(base.makespan_s + 3.0)


class TestFinishAtOwnDevice:
    """Satellite 2: finish_s is the finishing device's own step end."""

    # Two prefill-only requests at t=0 on two devices, prefill cost
    # = input_len: r0=(8,1) lands on device 0 and ends at 8, r1=(2,1)
    # lands on device 1 and ends at 2.  The pre-event-kernel code
    # stamped both with the slowest device's iteration end (8).
    def test_fast_device_finish_not_inflated(self):
        stats = _run(step=LenStep(),
                     requests=[InferenceRequest(8, 1, request_id=0),
                               InferenceRequest(2, 1, request_id=1)],
                     memory=_memory_for(4), num_devices=2)
        by_id = {c.request.request_id: c for c in stats.completed}
        assert by_id[0].finish_s == pytest.approx(8.0)
        assert by_id[1].finish_s == pytest.approx(2.0)
        assert stats.makespan_s == pytest.approx(8.0)


class TestDeadDeviceCapacity:
    """Satellite 3: failed devices stop accruing capacity."""

    # 4 requests (4,3) at t=0, 2 devices, max_batch=2: each device
    # prefills two requests [0,2] then decodes [2,3],[3,4].  Device 1
    # fails at 2.5 (its decode macro was fault-bounded to [2,3] and
    # then cancelled mid-flight): its two victims lose their KV caches,
    # requeue, and wait for device 0's slots.  Re-admitted at t=4 they
    # re-run prefill [4,5],[5,6] and decode [6,7],[7,8] -> makespan 8.
    #
    #   lost_device_s = 8 - 2.5 = 5.5
    #   busy_s        = d0: [0,4]+[4,8] = 8;  d1: [0,2] = 2  -> 10
    #   utilization   = 10 / (2*8 - 5.5) = 10/10.5
    PLAN = FaultPlan().with_device_failure(at_s=2.5, device=1)

    def _stats(self):
        with chaos(self.PLAN):
            return _run(step=ConstStep(prefill=1.0, decode=1.0),
                        requests=_requests(4), num_devices=2,
                        max_batch=2)

    def test_lost_device_seconds(self):
        stats = self._stats()
        assert len(stats.completed) == 4
        assert stats.makespan_s == pytest.approx(8.0)
        assert stats.devices_failed == 1
        assert stats.lost_device_s == pytest.approx(5.5)
        assert stats.as_dict()["lost_device_s"] == pytest.approx(5.5)

    def test_utilization_excludes_lost_capacity(self):
        stats = self._stats()
        assert stats.busy_s == pytest.approx(10.0)
        assert stats.available_device_s == pytest.approx(10.5)
        assert stats.instance_utilization == pytest.approx(10.0 / 10.5)
        # The failing-before denominator charged the dead device for
        # the whole makespan: 8/12, visibly below the fixed value.
        naive = stats.busy_s / (stats.makespan_s * stats.num_instances)
        assert stats.instance_utilization > naive

    def test_no_faults_means_no_lost_capacity(self):
        stats = _run()
        assert stats.lost_device_s == 0.0


class TestFailoverAttribution:
    """Satellite 4: duplicate request objects keep exact attribution."""

    # The same InferenceRequest *object* appears twice in the stream
    # (colliding id()); both copies land on device 1 and both are
    # requeued when it fails.  The old id()-keyed requeue_info table
    # overwrote one copy's entry, dropping a failover count and a
    # latency sample.
    def test_duplicate_object_failovers_both_counted(self):
        dup = InferenceRequest(4, 3, request_id=1)
        big = InferenceRequest(8, 6, request_id=0)
        plan = FaultPlan().with_device_failure(at_s=0.5, device=1)
        with chaos(plan) as state:
            stats = _run(requests=[big, dup, dup],
                         memory=_memory_for(4), num_devices=2)
        assert len(stats.completed) == 3
        assert stats.failovers == 2
        copies = [c for c in stats.completed if c.request is dup]
        assert [c.failovers for c in copies] == [1, 1]
        assert len(stats.failover_latencies_s) == 2
        assert state.counters.requests_requeued == 2


class TestEventTimelines:
    """Hand-computed single-device schedules (ex kernel-A/B cases)."""

    def test_closed_batch_exact(self):
        # 6 requests (4,3) all at t=0, prefill=1, decode=0.5: one
        # prefill-bearing unit runs the six prefills back to back
        # ([0,1]..[5,6], first tokens at 1..6), then the whole batch
        # decodes its remaining 2 tokens in steps [6,6.5],[6.5,7].
        stats = _run(requests=_requests(6))
        assert len(stats.completed) == 6
        by_id = {c.request.request_id: c for c in stats.completed}
        for i in range(6):
            assert by_id[i].start_s == pytest.approx(0.0)
            assert by_id[i].first_token_s == pytest.approx(float(i + 1))
            assert by_id[i].finish_s == pytest.approx(7.0)
        assert stats.makespan_s == pytest.approx(7.0)
        assert stats.max_occupancy == 6

    def test_kv_pressure_serializes_admission(self):
        # KV room for exactly one (4,3) request: r1 waits until r0's
        # reservation frees at its completion.  r0: prefill [0,1],
        # decodes [1,1.5],[1.5,2].  r1 admitted at 2: prefill [2,3],
        # decodes [3,3.5],[3.5,4].
        stats = _run(requests=_requests(2), memory=_memory_for(1, 4, 3))
        by_id = {c.request.request_id: c for c in stats.completed}
        assert by_id[0].start_s == pytest.approx(0.0)
        assert by_id[0].finish_s == pytest.approx(2.0)
        assert by_id[1].start_s == pytest.approx(2.0)
        assert by_id[1].first_token_s == pytest.approx(3.0)
        assert by_id[1].finish_s == pytest.approx(4.0)
        assert stats.makespan_s == pytest.approx(4.0)
        assert stats.max_occupancy == 1

    @pytest.mark.parametrize("seed,rate", [(0, 0.5), (1, 2.0), (2, 8.0)])
    def test_poisson_streams_deterministic_and_fcfs(self, seed, rate):
        arrivals = poisson_arrivals(10, rate, seed=seed)
        runs = []
        for _ in range(2):
            stats = _run(requests=_requests(10), arrivals=arrivals)
            runs.append([(c.request.request_id, c.start_s, c.finish_s,
                          c.first_token_s) for c in stats.completed])
        assert runs[0] == runs[1]  # bit-identical, not approx
        # FCFS on one device: admission order follows arrival order.
        starts = sorted((start, rid) for rid, start, _f, _t in runs[0])
        assert [rid for _s, rid in starts] == sorted(
            range(10), key=lambda i: (arrivals[i], i))

    def test_mid_macro_arrival_truncates_to_step_boundary(self):
        # r0=(4,5): prefill [0,1], decode macro of 4 steps ending at
        # 1.5/2.0/2.5/3.0.  r1 arrives at 1.7 mid-macro: the kernel
        # cuts the macro at the next step boundary (2.0) and starts
        # r1's prefill there.
        requests = [InferenceRequest(4, 5, request_id=0),
                    InferenceRequest(4, 3, request_id=1)]
        stats = _run(requests=requests, arrivals=[0.0, 1.7])
        r1 = next(c for c in stats.completed
                  if c.request.request_id == 1)
        assert r1.start_s == pytest.approx(2.0)
        assert r1.first_token_s == pytest.approx(3.0)


class TestScaleSmoke:
    def test_many_requests_many_devices_deterministic(self):
        requests = _requests(600, input_len=4, output_len=3)
        arrivals = poisson_arrivals(600, 20.0, seed=9)
        runs = []
        for _ in range(2):
            stats = _run(requests=requests, arrivals=arrivals,
                         num_devices=4, max_batch=4)
            runs.append(stats.as_dict())
        assert runs[0] == runs[1]
        assert runs[0]["requests"] == 600.0
        assert runs[0]["rejected"] == 0.0

    def test_appliance_serve_entry_point(self):
        appliance = PnmAppliance(num_devices=2)
        requests = [InferenceRequest(16, 8, request_id=i)
                    for i in range(6)]
        stats = appliance.serve(OPT_1_3B, requests)
        assert len(stats.completed) == 6
        assert stats.num_instances == 2
