"""Register files: naming, capacity accounting, allocator."""

import numpy as np
import pytest

from repro.accelerator import RegisterAllocator, RegisterFileState, bank_of
from repro.errors import AllocationError, IsaError


class TestNaming:
    @pytest.mark.parametrize("name,bank", [("m0", "m"), ("v12", "v"),
                                           ("s3", "s")])
    def test_bank_of(self, name, bank):
        assert bank_of(name) == bank

    @pytest.mark.parametrize("bad", ["x0", "m", "3m", "mm1", ""])
    def test_bad_names_rejected(self, bad):
        with pytest.raises(IsaError):
            bank_of(bad)


class TestAllocator:
    def test_fresh_names_unique(self):
        regs = RegisterAllocator()
        names = {regs.matrix() for _ in range(10)}
        assert len(names) == 10

    def test_banks_independent(self):
        regs = RegisterAllocator()
        assert regs.matrix() == "m0"
        assert regs.vector() == "v0"
        assert regs.scalar() == "s0"
        assert regs.matrix() == "m1"

    def test_unknown_bank(self):
        with pytest.raises(IsaError):
            RegisterAllocator().fresh("q")


class TestCapacity:
    def test_write_charges_bank(self):
        rf = RegisterFileState(matrix_bytes=1024, logical_scale=1.0)
        rf.write("m0", np.zeros(128, dtype=np.float32))
        assert rf.used_bytes("m") == 512

    def test_overflow_raises(self):
        rf = RegisterFileState(matrix_bytes=256, logical_scale=1.0)
        with pytest.raises(AllocationError):
            rf.write("m0", np.zeros(128, dtype=np.float32))

    def test_overwrite_releases_old_bytes(self):
        rf = RegisterFileState(matrix_bytes=1024, logical_scale=1.0)
        rf.write("m0", np.zeros(200, dtype=np.float32))
        rf.write("m0", np.zeros(10, dtype=np.float32))
        assert rf.used_bytes("m") == 40

    def test_free_releases(self):
        rf = RegisterFileState(matrix_bytes=1024, logical_scale=1.0)
        rf.write("m0", np.zeros(64, dtype=np.float32))
        rf.free("m0")
        assert rf.used_bytes("m") == 0
        assert "m0" not in rf

    def test_free_idempotent(self):
        rf = RegisterFileState()
        rf.free("m5")  # never written; must not raise

    def test_logical_scale_halves_fp32_footprint(self):
        rf = RegisterFileState(matrix_bytes=256, logical_scale=0.5)
        rf.write("m0", np.zeros(128, dtype=np.float32))  # 512B fp32, 256 fp16
        assert rf.used_bytes("m") == 256

    def test_read_before_write_raises(self):
        with pytest.raises(IsaError):
            RegisterFileState().read("m0")

    def test_banks_isolated(self):
        rf = RegisterFileState(matrix_bytes=64, vector_bytes=8192,
                               logical_scale=1.0)
        rf.write("v0", np.zeros(1024, dtype=np.float32))
        with pytest.raises(AllocationError):
            rf.write("m0", np.zeros(1024, dtype=np.float32))

    def test_live_registers_iterates(self):
        rf = RegisterFileState()
        rf.write("m0", np.zeros(4, dtype=np.float32))
        rf.write("s1", np.zeros(1, dtype=np.float32))
        assert set(rf.live_registers()) == {"m0", "s1"}

    def test_unknown_bank_query(self):
        with pytest.raises(IsaError):
            RegisterFileState().used_bytes("z")
