"""The golden numpy transformer: shapes, invariants, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, ExecutionError
from repro.llm import KVState, ReferenceModel, random_weights, tiny_config
from repro.llm.reference import causal_mask, gelu, layernorm, softmax


class TestPrimitives:
    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(0).standard_normal((5, 9)).astype(np.float32)
        s = softmax(x)
        np.testing.assert_allclose(s.sum(axis=-1), 1.0, rtol=1e-5)

    def test_softmax_shift_invariant(self):
        x = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), rtol=1e-5)

    def test_layernorm_zero_mean_unit_var(self):
        x = np.random.default_rng(1).standard_normal((4, 64)).astype(
            np.float32) * 10
        g = np.ones(64, dtype=np.float32)
        b = np.zeros(64, dtype=np.float32)
        y = layernorm(x, g, b)
        np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(y.std(axis=-1), 1.0, atol=1e-2)

    def test_gelu_limits(self):
        assert gelu(np.float32(10.0)) == pytest.approx(10.0, rel=1e-3)
        assert gelu(np.float32(-10.0)) == pytest.approx(0.0, abs=1e-3)
        assert gelu(np.float32(0.0)) == 0.0

    def test_causal_mask_offset(self):
        mask = causal_mask(2, 5, offset=2)
        assert mask[0].tolist() == [True, True, True, False, False]
        assert mask[1].tolist() == [True, True, True, True, False]

    @given(st.integers(1, 6), st.integers(1, 10))
    def test_causal_mask_full_when_offset_large(self, rows, cols):
        assert causal_mask(rows, cols, offset=cols).all()


class TestWeights:
    def test_random_weights_deterministic(self, tiny_cfg):
        a = random_weights(tiny_cfg, seed=5)
        b = random_weights(tiny_cfg, seed=5)
        np.testing.assert_array_equal(a.token_embedding, b.token_embedding)
        np.testing.assert_array_equal(a.layers[0].w_qkv, b.layers[0].w_qkv)

    def test_named_tensors_complete(self, tiny_weights, tiny_cfg):
        tensors = tiny_weights.named_tensors()
        assert "token_embedding" in tensors
        assert f"layer{tiny_cfg.num_layers - 1}.w_fc2" in tensors
        # 5 globals + 12 tensors per layer.
        assert len(tensors) == 5 + 12 * tiny_cfg.num_layers

    def test_weight_shapes(self, tiny_weights, tiny_cfg):
        d, dff = tiny_cfg.d_model, tiny_cfg.d_ff
        layer = tiny_weights.layers[0]
        assert layer.w_qkv.shape == (d, 3 * d)
        assert layer.w_fc1.shape == (d, dff)
        assert tiny_weights.lm_head.shape == (d, tiny_cfg.vocab_size)


class TestForward:
    def test_logits_shape(self, reference_model, tiny_cfg):
        logits = reference_model.forward([1, 2, 3], KVState())
        assert logits.shape == (tiny_cfg.vocab_size,)

    def test_kv_grows_per_stage(self, reference_model):
        kv = KVState()
        reference_model.forward([1, 2, 3], kv)
        assert kv.context_len == 3
        reference_model.forward([4], kv)
        assert kv.context_len == 4

    def test_incremental_equals_full_recompute(self, reference_model):
        """KV-cached decoding must equal recomputing from scratch."""
        prompt = [3, 1, 4, 1, 5]
        kv = KVState()
        reference_model.forward(prompt[:-1], kv)
        incremental = reference_model.forward([prompt[-1]], kv)
        full = reference_model.forward(prompt, KVState())
        np.testing.assert_allclose(incremental, full, rtol=1e-4, atol=1e-5)

    def test_rejects_out_of_vocab_token(self, reference_model, tiny_cfg):
        with pytest.raises(ExecutionError):
            reference_model.forward([tiny_cfg.vocab_size], KVState())

    def test_rejects_empty_tokens(self, reference_model):
        with pytest.raises(ConfigurationError):
            reference_model.forward([], KVState())

    def test_rejects_overlong_sequence(self, tiny_cfg):
        model = ReferenceModel(random_weights(tiny_cfg, seed=0))
        too_long = list(range(3)) * (tiny_cfg.max_seq_len // 3 + 2)
        with pytest.raises(ConfigurationError):
            model.forward([t % tiny_cfg.vocab_size for t in too_long],
                          KVState())


class TestGenerate:
    def test_generate_count(self, reference_model):
        tokens = reference_model.generate([1, 2], 6)
        assert len(tokens) == 6

    def test_generate_deterministic(self, reference_model):
        assert reference_model.generate([9, 8], 5) == \
            reference_model.generate([9, 8], 5)

    def test_generate_rejects_zero_tokens(self, reference_model):
        with pytest.raises(ConfigurationError):
            reference_model.generate([1], 0)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=6))
    def test_generate_tokens_in_vocab(self, prompt):
        cfg = tiny_config()
        model = ReferenceModel(random_weights(cfg, seed=2))
        for token in model.generate(prompt, 3):
            assert 0 <= token < cfg.vocab_size
