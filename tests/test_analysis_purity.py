"""Simulation-purity lint: rule units on synthetic sources + real tree.

Each PUR3xx rule gets positive and negative cases on small synthetic
sources (``lint_source`` takes the pretend path that selects the rule
set), and the integration test asserts the real ``src/repro`` tree is
clean — the property the blocking CI job enforces.
"""

import textwrap
from pathlib import Path

from repro.analysis import lint_source, lint_tree, rules_for

REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def _codes(source, relpath):
    return [d.code for d in lint_source(textwrap.dedent(source), relpath)]


class TestRuleSelection:
    def test_wall_clock_only_in_timing_packages(self):
        assert "PUR301" in rules_for("perf/simulator.py")
        assert "PUR301" in rules_for("cxl/link.py")
        assert "PUR301" in rules_for("appliance/scheduler.py")
        assert "PUR301" not in rules_for("obs/tracer.py")
        assert "PUR301" not in rules_for("cli.py")

    def test_rng_rule_exempts_faults(self):
        assert "PUR302" not in rules_for("faults/plan.py")
        assert "PUR302" in rules_for("llm/reference.py")

    def test_float_rule_only_for_reference(self):
        assert "PUR304" in rules_for("llm/reference.py")
        assert "PUR304" not in rules_for("llm/config.py")

    def test_mutation_rule_everywhere(self):
        assert "PUR303" in rules_for("runtime/session.py")
        assert "PUR303" in rules_for("obs/tracer.py")


class TestWallClock:
    def test_time_time_flagged(self):
        src = """
        import time
        def step():
            return time.time()
        """
        assert _codes(src, "perf/simulator.py") == ["PUR301"]

    def test_perf_counter_from_import_flagged(self):
        src = """
        from time import perf_counter
        def step():
            return perf_counter()
        """
        assert _codes(src, "cxl/link.py") == ["PUR301"]

    def test_datetime_now_flagged(self):
        src = """
        from datetime import datetime
        def stamp():
            return datetime.now()
        """
        assert _codes(src, "appliance/scheduler.py") == ["PUR301"]

    def test_allowed_outside_timing_packages(self):
        src = """
        import time
        def wall():
            return time.perf_counter()
        """
        assert _codes(src, "obs/tracer.py") == []

    def test_simulated_clock_not_flagged(self):
        src = """
        def step(clock):
            clock.advance(1e-6)
            return clock.now_s
        """
        assert _codes(src, "perf/simulator.py") == []

    def test_location_carries_line(self):
        src = "import time\nx = time.time()\n"
        diags = lint_source(src, "perf/units.py")
        assert diags[0].location == "perf/units.py:2"


class TestUnseededRng:
    def test_bare_default_rng_flagged(self):
        src = """
        import numpy as np
        rng = np.random.default_rng()
        """
        assert _codes(src, "llm/workload.py") == ["PUR302"]

    def test_seeded_default_rng_ok(self):
        src = """
        import numpy as np
        rng = np.random.default_rng(1234)
        """
        assert _codes(src, "llm/workload.py") == []

    def test_legacy_numpy_global_rng_flagged(self):
        src = """
        import numpy as np
        def noisy():
            np.random.seed(0)
            return np.random.randn(4)
        """
        assert _codes(src, "llm/workload.py") == ["PUR302", "PUR302"]

    def test_stdlib_module_rng_flagged(self):
        src = """
        import random
        x = random.random()
        """
        assert _codes(src, "appliance/arrivals.py") == ["PUR302"]

    def test_stdlib_random_class_ok(self):
        src = """
        import random
        rng = random.Random(7)
        y = rng.random()
        """
        assert _codes(src, "appliance/arrivals.py") == []

    def test_faults_package_exempt(self):
        src = """
        import numpy as np
        rng = np.random.default_rng()
        """
        assert _codes(src, "faults/plan.py") == []


class TestObsGuardMutation:
    def test_mutation_in_enabled_body_flagged(self):
        src = """
        def readback(self, tracer):
            if tracer.enabled:
                self.clock += 1.0
        """
        assert _codes(src, "runtime/session.py") == ["PUR303"]

    def test_mutation_after_early_return_flagged(self):
        # The exact shape of the bug this rule caught in
        # InferenceSession._trace_host_readback.
        src = """
        def readback(self, tracer, metrics):
            if not (tracer.enabled or metrics.enabled):
                return
            link_s = 1e-6
            self._sim_clock_s += link_s
        """
        assert _codes(src, "runtime/session.py") == ["PUR303"]

    def test_pure_span_emission_ok(self):
        src = """
        def readback(self, tracer):
            if not tracer.enabled:
                return
            tracer.sim_span("host_read", start_s=0.0, dur_s=1e-6)
        """
        assert _codes(src, "runtime/session.py") == []

    def test_local_assignment_in_guard_ok(self):
        src = """
        def readback(self, tracer):
            if tracer.enabled:
                label = "x"
                tracer.span(label)
        """
        assert _codes(src, "runtime/session.py") == []

    def test_unguarded_mutation_ok(self):
        src = """
        def step(self):
            self.clock += 1.0
        """
        assert _codes(src, "runtime/session.py") == []

    def test_non_obs_guard_ok(self):
        src = """
        def step(self, device):
            if device.enabled:
                self.clock += 1.0
        """
        assert _codes(src, "runtime/session.py") == []

    def test_mutation_in_nested_block_inside_guard_flagged(self):
        src = """
        def flush(self, metrics, items):
            if metrics.enabled:
                for item in items:
                    self.seen[item] = True
        """
        assert _codes(src, "appliance/engine.py") == ["PUR303"]

    def test_nested_function_inside_guard_not_flagged(self):
        # A def inside the guard does not execute there.
        src = """
        def install(self, tracer):
            if tracer.enabled:
                def hook():
                    self.count += 1
                tracer.on_span(hook)
        """
        assert _codes(src, "runtime/session.py") == []


class TestFloat64:
    def test_np_float64_flagged(self):
        src = """
        import numpy as np
        def kernel(x):
            return x.astype(np.float64)
        """
        assert _codes(src, "llm/reference.py") == ["PUR304"]

    def test_dtype_string_flagged(self):
        src = """
        import numpy as np
        x = np.zeros(4, dtype="float64")
        """
        assert _codes(src, "llm/reference.py") == ["PUR304"]

    def test_dtype_float_builtin_flagged(self):
        src = """
        import numpy as np
        x = np.zeros(4, dtype=float)
        """
        assert _codes(src, "llm/reference.py") == ["PUR304"]

    def test_float32_ok(self):
        src = """
        import numpy as np
        x = np.zeros(4, dtype=np.float32)
        """
        assert _codes(src, "llm/reference.py") == []

    def test_not_applied_elsewhere(self):
        src = """
        import numpy as np
        x = np.zeros(4, dtype=np.float64)
        """
        assert _codes(src, "perf/power.py") == []


class TestSyntaxError:
    def test_unparseable_source_reported(self):
        diags = lint_source("def broken(:\n", "llm/ops.py")
        assert [d.code for d in diags] == ["PUR300"]


class TestRealTree:
    def test_src_repro_is_clean(self):
        report = lint_tree(REPO_SRC)
        assert report.clean, report.render()

    def test_report_shape(self):
        report = lint_tree(REPO_SRC)
        data = report.as_dict()
        assert data["clean"] is True
        assert data["counts"] == {"error": 0, "warning": 0, "info": 0}
