"""CLI surfaces of the static-analysis layer: exit codes and JSON.

The repo-wide convention under test: 0 = clean, 2 = the tool ran and
found diagnostics, 1 = the tool itself failed.  CI scripts rely on the
distinction to tell "findings" from "the linter broke".
"""

import importlib.util
import io
import json
from contextlib import redirect_stdout
from pathlib import Path

from repro.cli import EXIT_DIAGNOSTICS, main

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "static_checks", REPO_ROOT / "tools" / "static_checks.py")
static_checks = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(static_checks)


def _run(argv):
    out = io.StringIO()
    with redirect_stdout(out):
        code = main(argv)
    return code, out.getvalue()


class TestLintProgramExitCodes:
    def test_clean_program_exits_zero(self):
        code, out = _run(["lint-program", "tiny"])
        assert code == 0
        assert "clean" in out

    def test_warnings_exit_two(self):
        code, out = _run(["lint-program", "tiny", "--batched", "4"])
        assert code == EXIT_DIAGNOSTICS == 2
        assert "PNM104" in out and "PNM204" in out

    def test_errors_only_ignores_warnings(self):
        code, _ = _run(["lint-program", "tiny", "--batched", "4",
                        "--errors-only"])
        assert code == 0

    def test_unknown_model_is_tool_failure(self):
        code, _ = _run(["lint-program", "no-such-model"])
        assert code == 1

    def test_impossible_geometry_is_tool_failure(self):
        # ctx beyond max_seq_len: the compiler refuses, which is a
        # crash (1), not a diagnostic finding (2).
        code, _ = _run(["lint-program", "tiny", "--ctx-prev", "4096"])
        assert code == 1

    def test_explicit_geometry(self):
        code, out = _run(["lint-program", "tiny",
                          "--batch-tokens", "4", "--ctx-prev", "8"])
        assert code == 0
        assert "m=4" in out and "ctx_prev=8" in out


class TestLintProgramJson:
    def test_json_clean(self):
        code, out = _run(["lint-program", "tiny", "--json"])
        assert code == 0
        report = json.loads(out)
        assert report["ok"] is True and report["clean"] is True
        assert report["diagnostics"] == []

    def test_json_diagnostics_carry_index_and_code(self):
        code, out = _run(["lint-program", "tiny", "--batched", "3",
                          "--json"])
        assert code == 2
        report = json.loads(out)
        assert report["ok"] is True and report["clean"] is False
        for diag in report["diagnostics"]:
            assert diag["code"].startswith("PNM")
            assert isinstance(diag["index"], int)
            assert diag["severity"] == "warning"


class TestLintTree:
    def test_real_tree_clean_with_default_baseline(self):
        code, out = _run(["lint"])
        assert code == 0
        assert "clean" in out and "suppressed by baseline" in out

    def test_no_baseline_exposes_known_exceptions(self):
        code, out = _run(["lint", "--no-baseline"])
        assert code == EXIT_DIAGNOSTICS == 2
        for expected in ("UNIT403", "DET501", "CON603"):
            assert expected in out, out

    def test_select_limits_passes(self):
        code, out = _run(["lint", "--select", "units", "--no-baseline"])
        assert code == 2
        assert "UNIT403" in out and "DET501" not in out

    def test_select_with_default_baseline_stays_clean(self):
        # The checked-in baseline carries DET/CON entries; a
        # units-only run must scope them out rather than call them
        # stale (regression: this used to exit 2).
        code, out = _run(["lint", "--select", "units"])
        assert code == 0, out
        assert "stale" not in out

    def test_select_alias_and_json(self):
        code, out = _run(["lint", "--select", "det,con",
                          "--no-baseline", "--json"])
        assert code == 2
        report = json.loads(out)
        codes = {d["code"] for d in report["diagnostics"]}
        assert codes == {"DET501", "CON603"}, codes

    def test_json_reports_baseline_accounting(self):
        code, out = _run(["lint", "--json"])
        assert code == 0
        report = json.loads(out)
        assert report["ok"] is True and report["clean"] is True
        assert report["stale_baseline"] == []
        assert 0 < len(report["suppressed"]) <= 10
        codes = {d["code"] for d in report["suppressed"]}
        assert codes == {"UNIT403", "DET501", "CON603"}

    def test_explicit_root_without_baseline(self, tmp_path):
        pkg = tmp_path / "perf"
        pkg.mkdir()
        (pkg / "bad.py").write_text(
            "'''doc.'''\nRATE = 1 / 1e9\n")
        code, out = _run(["lint", "--root", str(tmp_path),
                          "--no-baseline"])
        assert code == 2 and "UNIT403" in out

    def test_unknown_pass_is_tool_failure(self):
        code, _ = _run(["lint", "--select", "spelling"])
        assert code == 1


class TestStaticChecksTool:
    def test_real_tree_clean_exits_zero(self, capsys):
        code = static_checks.main(["--root", str(REPO_ROOT / "src" / "repro")])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_dirty_tree_exits_two(self, tmp_path, capsys):
        pkg = tmp_path / "perf"
        pkg.mkdir()
        (pkg / "bad.py").write_text(
            '"""doc."""\nimport time\nT = time.time()\n')
        code = static_checks.main(["--root", str(tmp_path)])
        assert code == static_checks.EXIT_DIAGNOSTICS == 2
        assert "PUR301" in capsys.readouterr().out

    def test_missing_root_exits_one(self, capsys):
        code = static_checks.main(["--root", "/no/such/dir"])
        assert code == 1

    def test_json_output(self, capsys):
        code = static_checks.main(
            ["--root", str(REPO_ROOT / "src" / "repro"), "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is True
