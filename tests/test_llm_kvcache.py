"""KV-cache sizing, growth, and capacity checks."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CapacityError, ConfigurationError
from repro.llm import KVCache, OPT_13B, peak_kv_bytes, request_fits, tiny_config
from repro.llm.batching import batch_kv_bytes
from repro.llm.kvcache import kv_spare_bytes


class TestKVCache:
    def test_empty_cache_has_no_bytes(self):
        cache = KVCache(tiny_config())
        assert cache.total_bytes == 0

    def test_append_grows_linearly(self):
        cfg = tiny_config()
        cache = KVCache(cfg)
        cache.append(5)
        assert cache.total_bytes == 5 * cfg.kv_bytes_per_token()

    def test_append_beyond_max_seq_rejected(self):
        cfg = tiny_config(max_seq_len=8)
        cache = KVCache(cfg, tokens=8)
        with pytest.raises(CapacityError):
            cache.append(1)

    def test_negative_append_rejected(self):
        with pytest.raises(ConfigurationError):
            KVCache(tiny_config()).append(-1)

    def test_negative_initial_tokens_rejected(self):
        with pytest.raises(ConfigurationError):
            KVCache(tiny_config(), tokens=-3)

    def test_gen_reads_whole_cache(self):
        cache = KVCache(tiny_config(), tokens=7)
        assert cache.read_bytes_for_gen() == cache.total_bytes


class TestPeakAndFit:
    def test_peak_kv_matches_paper_formula(self):
        # 2 x L x d_emb elements per layer (§II-B).
        cfg = OPT_13B
        total = peak_kv_bytes(cfg, 64, 64)
        assert total == 128 * 2 * cfg.num_layers * cfg.d_model * 2

    def test_peak_rejects_overlong_requests(self):
        with pytest.raises(CapacityError):
            peak_kv_bytes(tiny_config(max_seq_len=16), 10, 10)

    def test_opt13b_fits_cxl_but_not_small_memory(self):
        from repro.units import GB, GiB
        assert request_fits(OPT_13B, 512 * GB, 64, 1024)
        assert not request_fits(OPT_13B, 16 * GiB, 64, 1024)

    def test_batch_scales_kv_only(self):
        from repro.units import GB
        # A memory that fits batch=1 may not fit batch=256.
        assert request_fits(OPT_13B, 30 * GB, 64, 1024, batch=1)
        assert not request_fits(OPT_13B, 30 * GB, 64, 1024, batch=256)

    @given(inp=st.integers(1, 16), out=st.integers(1, 16))
    def test_peak_monotone(self, inp, out):
        cfg = tiny_config()
        assert peak_kv_bytes(cfg, inp, out) \
            <= peak_kv_bytes(cfg, inp, out + 1)


class TestConsistency:
    """The capacity planners and the incremental cache must agree."""

    @given(prompt=st.integers(1, 32), gen=st.integers(0, 31))
    def test_batch_one_matches_cache_append_math(self, prompt, gen):
        cfg = tiny_config()
        cache = KVCache(cfg, tokens=prompt)
        for _ in range(min(gen, cfg.max_seq_len - prompt)):
            cache.append(1)
        ctx = cache.tokens
        assert batch_kv_bytes(cfg, ctx, 1) == cache.total_bytes

    def test_peak_equals_cache_at_final_context(self):
        cfg = tiny_config()
        cache = KVCache(cfg, tokens=10)
        cache.append(6)
        assert peak_kv_bytes(cfg, 10, 6) == cache.total_bytes


class TestSpareBytes:
    def test_spare_is_memory_minus_params(self):
        cfg = tiny_config()
        memory = cfg.param_bytes + 1234
        assert kv_spare_bytes(cfg, memory) == 1234

    def test_spare_clamps_at_zero(self):
        cfg = tiny_config()
        assert kv_spare_bytes(cfg, cfg.param_bytes // 2) == 0

    def test_negative_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            kv_spare_bytes(tiny_config(), -1)
