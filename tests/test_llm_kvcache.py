"""KV-cache sizing, growth, and capacity checks."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CapacityError, ConfigurationError
from repro.llm import KVCache, OPT_13B, peak_kv_bytes, request_fits, tiny_config


class TestKVCache:
    def test_empty_cache_has_no_bytes(self):
        cache = KVCache(tiny_config())
        assert cache.total_bytes == 0

    def test_append_grows_linearly(self):
        cfg = tiny_config()
        cache = KVCache(cfg)
        cache.append(5)
        assert cache.total_bytes == 5 * cfg.kv_bytes_per_token()

    def test_append_beyond_max_seq_rejected(self):
        cfg = tiny_config(max_seq_len=8)
        cache = KVCache(cfg, tokens=8)
        with pytest.raises(CapacityError):
            cache.append(1)

    def test_negative_append_rejected(self):
        with pytest.raises(ConfigurationError):
            KVCache(tiny_config()).append(-1)

    def test_negative_initial_tokens_rejected(self):
        with pytest.raises(ConfigurationError):
            KVCache(tiny_config(), tokens=-3)

    def test_gen_reads_whole_cache(self):
        cache = KVCache(tiny_config(), tokens=7)
        assert cache.read_bytes_for_gen() == cache.total_bytes


class TestPeakAndFit:
    def test_peak_kv_matches_paper_formula(self):
        # 2 x L x d_emb elements per layer (§II-B).
        cfg = OPT_13B
        total = peak_kv_bytes(cfg, 64, 64)
        assert total == 128 * 2 * cfg.num_layers * cfg.d_model * 2

    def test_peak_rejects_overlong_requests(self):
        with pytest.raises(CapacityError):
            peak_kv_bytes(tiny_config(max_seq_len=16), 10, 10)

    def test_opt13b_fits_cxl_but_not_small_memory(self):
        from repro.units import GB, GiB
        assert request_fits(OPT_13B, 512 * GB, 64, 1024)
        assert not request_fits(OPT_13B, 16 * GiB, 64, 1024)

    def test_batch_scales_kv_only(self):
        from repro.units import GB
        # A memory that fits batch=1 may not fit batch=256.
        assert request_fits(OPT_13B, 30 * GB, 64, 1024, batch=1)
        assert not request_fits(OPT_13B, 30 * GB, 64, 1024, batch=256)

    @given(inp=st.integers(1, 16), out=st.integers(1, 16))
    def test_peak_monotone(self, inp, out):
        cfg = tiny_config()
        assert peak_kv_bytes(cfg, inp, out) \
            <= peak_kv_bytes(cfg, inp, out + 1)
