"""Experiment harnesses: registry, rendering, per-experiment sanity."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import run_experiment
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.report import ExperimentResult, text_table


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "fig2", "fig3", "fig4", "table1", "table2", "fig10", "fig11",
            "table3", "scalability", "validation", "ablations",
            "disadvantages", "sensitivity", "service",
            "continuous-batching", "reliability"}

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")


class TestRendering:
    def test_text_table_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 200, "b": "y"}]
        rendered = text_table(rows)
        lines = rendered.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[:2])) <= 2

    def test_empty_rows(self):
        assert text_table([]) == "(no rows)"

    def test_result_requires_id(self):
        with pytest.raises(ConfigurationError):
            ExperimentResult(experiment_id="", title="x", rows=[])

    def test_render_includes_anchors_and_notes(self):
        result = ExperimentResult(experiment_id="t", title="T",
                                  rows=[{"a": 1}], anchors={"k": 2},
                                  notes=["careful"])
        rendered = result.render()
        assert "k = 2" in rendered
        assert "note: careful" in rendered


class TestFig2:
    def test_gpt35_exceeds_single_gpu(self):
        rows = run_experiment("fig2").rows
        gpt35 = [r for r in rows if "175B" in r["model"]][0]
        assert gpt35["capacity_GiB"] == pytest.approx(326, abs=5)
        assert gpt35["required_bw_TB_s"] > 1.55

    def test_capacity_monotone_in_model_size(self):
        rows = run_experiment("fig2").rows
        caps = [r["capacity_GiB"] for r in rows]
        assert caps == sorted(caps)


class TestFig3:
    def test_memcpy_dominates_pageable(self):
        rows = run_experiment("fig3").rows
        pageable = [r for r in rows if r["transfer"] == "pageable"]
        assert all(r["memcpy_fraction"] > 0.95 for r in pageable)

    def test_pinned_still_bottlenecked(self):
        rows = run_experiment("fig3").rows
        pinned = [r for r in rows if r["transfer"] == "pinned"]
        assert all(r["memcpy_fraction"] > 0.8 for r in pinned)


class TestFig4:
    def test_utilization_gap(self):
        rows = {r["metric"]: r["value"]
                for r in run_experiment("fig4").rows}
        assert rows["sum-stage GPU utilization"] > 0.75
        assert rows["gen-stage GPU utilization"] < 0.30

    def test_gemv_time_share_near_83_percent(self):
        rows = {r["metric"]: r["value"]
                for r in run_experiment("fig4").rows}
        assert rows["GEMV share of execution time"] == pytest.approx(
            0.83, abs=0.08)


class TestTables:
    def test_table1_lpddr_column(self):
        rows = run_experiment("table1").rows
        lpddr = [r for r in rows if r["technology"] == "LPDDR5X"][0]
        assert lpddr["cap_per_module_GB"] == pytest.approx(512.0)
        assert lpddr["bw_per_module_GB_s"] == pytest.approx(1088.0)

    def test_table2_key_parameters(self):
        rows = {r["parameter"]: r["value"]
                for r in run_experiment("table2").rows}
        assert rows["num_pes"] == 2048
        assert rows["peak_pe_tflops"] == pytest.approx(4.096)

    def test_table3_pnm_cheaper_to_run(self):
        rows = run_experiment("table3").rows
        gpu = [r for r in rows if "GPU" in r["appliance"]][0]
        pnm = [r for r in rows if "CXL-PNM" in r["appliance"]][0]
        assert pnm["usd_per_day"] < gpu["usd_per_day"] / 2
        assert pnm["Mtokens_per_usd"] > 3 * gpu["Mtokens_per_usd"]


class TestValidationExperiment:
    def test_worst_case_agreement_within_5_percent(self):
        rows = run_experiment("validation").rows
        worst = [r for r in rows if r["model"] == "worst case"][0]
        assert worst["rel_error"] < 0.05
