"""Unit-conversion helpers."""

import pytest

from repro import units


def test_decimal_units_scale_by_thousand():
    assert units.KB * 1000 == units.MB
    assert units.MB * 1000 == units.GB
    assert units.GB * 1000 == units.TB


def test_binary_units_scale_by_1024():
    assert units.KiB * 1024 == units.MiB
    assert units.MiB * 1024 == units.GiB
    assert units.GiB * 1024 == units.TiB


def test_gib_larger_than_gb():
    assert units.GiB > units.GB


def test_gbps_to_bytes_per_s():
    assert units.gbps_to_bytes_per_s(8.0) == pytest.approx(1e9)


def test_bytes_to_gib_roundtrip():
    assert units.bytes_to_gib(units.GiB) == pytest.approx(1.0)
    assert units.bytes_to_gb(units.GB) == pytest.approx(1.0)


def test_bandwidth_formatting_helpers():
    assert units.bytes_per_s_to_gb_per_s(2.5e9) == pytest.approx(2.5)
    assert units.bytes_per_s_to_tb_per_s(1.1e12) == pytest.approx(1.1)


def test_joules_to_kwh():
    assert units.joules_to_kwh(units.KILOWATT_HOUR) == pytest.approx(1.0)
    assert units.joules_to_kwh(3.6e6 * 24) == pytest.approx(24.0)


def test_seconds_per_day():
    assert units.SECONDS_PER_DAY == 86_400.0


def test_si_prefixes_are_exact_ints():
    # Dimensionless scaling prefixes: exact integer powers of ten so
    # multiplying/dividing by them is bit-exact against the 1eN float
    # spellings they replace (10**3 == float(1e3) exactly).
    assert units.KILO == 10**3 == 1e3
    assert units.MEGA == 10**6 == 1e6
    assert units.GIGA == 10**9 == 1e9
    assert units.TERA == 10**12 == 1e12
    for value in (units.KILO, units.MEGA, units.GIGA, units.TERA):
        assert isinstance(value, int)


def test_decimal_byte_units_exact_values():
    assert units.KB == 10**3
    assert units.MB == 10**6
    assert units.GB == 10**9
    assert units.TB == 10**12


def test_binary_byte_units_exact_values():
    assert units.KiB == 2**10
    assert units.MiB == 2**20
    assert units.GiB == 2**30
    assert units.TiB == 2**40


def test_bit_rate_units():
    assert units.Kbps == 10**3
    assert units.Mbps == 10**6
    assert units.Gbps == 10**9


def test_time_constants_are_reciprocal_magnitudes():
    assert units.MILLISECOND == 1e-3
    assert units.MICROSECOND == 1e-6
    assert units.NANOSECOND == 1e-9
    # The pairs the dimensional lint normalizes through: scaling down
    # then up is exact for powers of ten within float range.
    assert units.NANOSECOND * units.GIGA == 1.0
    assert units.MICROSECOND * units.MEGA == 1.0
    assert units.MILLISECOND * units.KILO == 1.0


def test_frequency_units():
    assert units.MHZ == 10**6
    assert units.GHZ == 10**9


def test_power_energy_units():
    assert units.WATT == 1.0
    assert units.KILOWATT == 10**3
    assert units.JOULE == 1.0
    assert units.KILOWATT_HOUR == 3.6e6


def test_sub_second_conversions():
    assert units.ns_to_s(25.0) == pytest.approx(25e-9)
    assert units.us_to_s(3.0) == pytest.approx(3e-6)
    assert units.ms_to_s(7.0) == pytest.approx(7e-3)


def test_scaled_readout_conversions_are_exact():
    # s_to_* multiply by exact integer powers of ten, so they are
    # bit-identical to the `* 1eN` spellings they replaced.
    assert units.s_to_ns(2.5e-9) == 2.5e-9 * 1e9
    assert units.s_to_us(1.25e-3) == 1.25e-3 * 1e6
    assert units.s_to_ms(0.125) == 0.125 * 1e3


def test_sub_second_round_trips():
    assert units.s_to_ns(units.ns_to_s(123.0)) == pytest.approx(123.0)
    assert units.s_to_us(units.us_to_s(9.5)) == pytest.approx(9.5)
    assert units.s_to_ms(units.ms_to_s(42.0)) == pytest.approx(42.0)


def test_tokens_per_s():
    assert units.tokens_per_s(100.0, 4.0) == pytest.approx(25.0)
    assert units.tokens_per_s(0.0, 4.0) == 0.0


def test_tokens_per_s_idle_interval_is_zero():
    # Zero elapsed time reports zero rate, matching ServiceStats'
    # empty-window convention, instead of raising ZeroDivisionError.
    assert units.tokens_per_s(100.0, 0.0) == 0.0


def test_gbps_to_bytes_per_s_pin_rates():
    # LPDDR5X per-pin rate from the paper: 8.533 Gbit/s -> bytes/s.
    assert units.gbps_to_bytes_per_s(8.533) \
        == pytest.approx(8.533e9 / 8.0)
