"""Unit-conversion helpers."""

import pytest

from repro import units


def test_decimal_units_scale_by_thousand():
    assert units.KB * 1000 == units.MB
    assert units.MB * 1000 == units.GB
    assert units.GB * 1000 == units.TB


def test_binary_units_scale_by_1024():
    assert units.KiB * 1024 == units.MiB
    assert units.MiB * 1024 == units.GiB
    assert units.GiB * 1024 == units.TiB


def test_gib_larger_than_gb():
    assert units.GiB > units.GB


def test_gbps_to_bytes_per_s():
    assert units.gbps_to_bytes_per_s(8.0) == pytest.approx(1e9)


def test_bytes_to_gib_roundtrip():
    assert units.bytes_to_gib(units.GiB) == pytest.approx(1.0)
    assert units.bytes_to_gb(units.GB) == pytest.approx(1.0)


def test_bandwidth_formatting_helpers():
    assert units.bytes_per_s_to_gb_per_s(2.5e9) == pytest.approx(2.5)
    assert units.bytes_per_s_to_tb_per_s(1.1e12) == pytest.approx(1.1)


def test_joules_to_kwh():
    assert units.joules_to_kwh(units.KILOWATT_HOUR) == pytest.approx(1.0)
    assert units.joules_to_kwh(3.6e6 * 24) == pytest.approx(24.0)


def test_seconds_per_day():
    assert units.SECONDS_PER_DAY == 86_400.0
