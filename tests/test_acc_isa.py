"""ISA definitions: opcodes, dependencies, validation, the six PEA ops."""

import pytest

from repro.accelerator import isa
from repro.errors import IsaError


class TestOpcodeNaming:
    def test_six_new_pea_instructions_exist(self):
        """The paper adds exactly these six PE-array instructions (§V-C)."""
        mm = isa.MpuMmPea(dst="m1", act="m0", weight_addr=0, m=2, k=4, n=4)
        mm_max = isa.MpuMmRedumaxPea(dst="m1", act="m0", weight_addr=0,
                                     m=2, k=4, n=4, rowmax_dst="v0")
        masked = isa.MpuMaskedMm(dst="m1", q="m0", k_addr=0, heads=2,
                                 head_dim=4, ctx=4, m=2, scale=1.0,
                                 mask_offset=0)
        masked_max = isa.MpuMaskedMm(dst="m1", q="m0", k_addr=0, heads=2,
                                     head_dim=4, ctx=4, m=2, scale=1.0,
                                     mask_offset=0, rowmax_dst="v0")
        conv = isa.MpuConv2d(dst="m1", act="m0", weight_addr=0, in_ch=1,
                             out_ch=1, kh=2, kw=2, h=4, w=4)
        conv_gelu = isa.MpuConv2d(dst="m1", act="m0", weight_addr=0,
                                  in_ch=1, out_ch=1, kh=2, kw=2, h=4, w=4,
                                  gelu=True)
        assert mm.opcode == "MPU_MM_PEA"
        assert mm_max.opcode == "MPU_MM_REDUMAX_PEA"
        assert masked.opcode == "MPU_MASKEDMM_PEA"
        assert masked_max.opcode == "MPU_MASKEDMM_REDUMAX_PEA"
        assert conv.opcode == "MPU_CONV2D_PEA"
        assert conv_gelu.opcode == "MPU_CONV2D_GELU_PEA"

    def test_gen_stage_attention_uses_adder_tree(self):
        masked = isa.MpuMaskedMm(dst="m1", q="m0", k_addr=0, heads=2,
                                 head_dim=4, ctx=4, m=1, scale=1.0,
                                 mask_offset=3)
        assert masked.unit is isa.Unit.ADDER_TREE
        assert masked.opcode == "MPU_MASKEDMV"

    def test_sum_stage_attention_uses_pe_array(self):
        masked = isa.MpuMaskedMm(dst="m1", q="m0", k_addr=0, heads=2,
                                 head_dim=4, ctx=4, m=4, scale=1.0,
                                 mask_offset=0)
        assert masked.unit is isa.Unit.PE_ARRAY


class TestQuantities:
    def test_mm_flops(self):
        mm = isa.MpuMmPea(dst="m1", act="m0", weight_addr=0, m=3, k=5, n=7)
        assert mm.flops() == 2 * 3 * 5 * 7
        assert mm.mem_elems() == 5 * 7

    def test_masked_mm_folds_heads(self):
        masked = isa.MpuMaskedMm(dst="m1", q="m0", k_addr=0, heads=4,
                                 head_dim=8, ctx=16, m=2, scale=1.0,
                                 mask_offset=0)
        assert masked.flops() == 2 * 4 * 2 * 16 * 8
        assert masked.mem_elems() == 16 * 4 * 8

    def test_dma_load_elems(self):
        load = isa.DmaLoad(dst="m0", addr=0, shape=(4, 8))
        assert load.mem_elems() == 32

    def test_dma_store_uses_advisory_shape(self):
        store = isa.DmaStore(src="m0", addr=0, shape=(2, 3))
        assert store.mem_elems() == 6
        assert isa.DmaStore(src="m0", addr=0).mem_elems() == 0

    def test_conv_output_geometry(self):
        conv = isa.MpuConv2d(dst="m1", act="m0", weight_addr=0, in_ch=3,
                             out_ch=8, kh=3, kw=3, h=10, w=10, stride=2)
        assert conv.out_hw == (4, 4)


class TestValidation:
    def test_bad_dims_rejected(self):
        with pytest.raises(IsaError):
            isa.MpuMv(dst="m1", act="m0", weight_addr=0, k=0, n=4)
        with pytest.raises(IsaError):
            isa.MpuMmPea(dst="m1", act="m0", weight_addr=0, m=1, k=-1, n=4)

    def test_redumax_requires_rowmax(self):
        with pytest.raises(IsaError):
            isa.MpuMmRedumaxPea(dst="m1", act="m0", weight_addr=0, m=2,
                                k=4, n=4)

    def test_conv_kernel_too_big(self):
        with pytest.raises(IsaError):
            isa.MpuConv2d(dst="m1", act="m0", weight_addr=0, in_ch=1,
                          out_ch=1, kh=5, kw=5, h=4, w=4)

    def test_slice_bad_range(self):
        with pytest.raises(IsaError):
            isa.VpuSlice(dst="m1", src="m0", start=4, stop=4)

    def test_bias_positive_width(self):
        with pytest.raises(IsaError):
            isa.VpuBias(dst="m1", src="m0", bias_addr=0, n=0)


class TestDependencies:
    def test_reads_writes(self):
        add = isa.VpuAdd(dst="m2", a="m0", b="m1")
        assert add.reads() == ("m0", "m1")
        assert add.writes() == ("m2",)

    def test_softmax_reads_rowmax(self):
        sm = isa.VpuSoftmax(dst="m1", src="m0", rowmax="v0")
        assert set(sm.reads()) == {"m0", "v0"}

    def test_redumax_writes_both(self):
        masked = isa.MpuMaskedMm(dst="m1", q="m0", k_addr=0, heads=1,
                                 head_dim=4, ctx=4, m=2, scale=1.0,
                                 mask_offset=0, rowmax_dst="v0")
        assert set(masked.writes()) == {"m1", "v0"}


class TestProgramValidation:
    def test_read_before_write_rejected(self):
        program = (isa.VpuGelu(dst="m1", src="m0"),)
        with pytest.raises(IsaError):
            isa.validate_program(program)

    def test_freed_register_cannot_be_read(self):
        program = (
            isa.DmaLoad(dst="m0", addr=0, shape=(2, 2)),
            isa.Free(regs=("m0",)),
            isa.VpuGelu(dst="m1", src="m0"),
        )
        with pytest.raises(IsaError):
            isa.validate_program(program)

    def test_valid_program_passes(self):
        program = (
            isa.DmaLoad(dst="m0", addr=0, shape=(2, 2)),
            isa.VpuGelu(dst="m1", src="m0"),
            isa.DmaStore(src="m1", addr=64, shape=(2, 2)),
            isa.Barrier(),
        )
        isa.validate_program(program)

    def test_non_instruction_rejected(self):
        with pytest.raises(IsaError):
            isa.validate_program(("not an instruction",))
