"""Functional tensor parallelism: sharded devices == reference model.

The strongest appliance-level correctness property: a model sharded
Megatron-style across 2 or 4 simulated CXL-PNM devices — with the host
broadcasting activations and reducing partials through real CXL.mem
transactions — generates the same tokens as the single-device reference.
"""

import pytest

from repro.errors import ConfigurationError, ParallelismError
from repro.llm import ReferenceModel, random_weights, tiny_config
from repro.runtime.tensor_parallel import TensorParallelSession


@pytest.fixture(scope="module")
def setup():
    cfg = tiny_config()
    weights = random_weights(cfg, seed=51)
    return weights, ReferenceModel(weights)


class TestEquivalence:
    @pytest.mark.parametrize("degree", [1, 2, 4])
    def test_tokens_match_reference(self, setup, degree):
        weights, reference = setup
        session = TensorParallelSession(weights, degree=degree)
        prompt = [3, 14, 15]
        assert session.generate(prompt, 6) == reference.generate(prompt, 6)

    def test_different_seed_and_prompt(self):
        cfg = tiny_config(num_heads=8, d_model=64)
        weights = random_weights(cfg, seed=99)
        reference = ReferenceModel(weights)
        session = TensorParallelSession(weights, degree=2)
        prompt = [200, 100]
        assert session.generate(prompt, 5) == reference.generate(prompt, 5)

    def test_single_token_prompt(self, setup):
        weights, reference = setup
        session = TensorParallelSession(weights, degree=2)
        assert session.generate([42], 3) == reference.generate([42], 3)


class TestOrchestration:
    def test_host_traffic_scales_with_degree(self, setup):
        weights, _ = setup
        two = TensorParallelSession(weights, degree=2)
        four = TensorParallelSession(weights, degree=4)
        two.generate([1, 2], 2)
        four.generate([1, 2], 2)
        assert four.host_cxl_writes == 2 * two.host_cxl_writes
        assert four.host_cxl_reads == 2 * two.host_cxl_reads

    def test_every_device_served_requests(self, setup):
        weights, _ = setup
        session = TensorParallelSession(weights, degree=4)
        session.generate([1, 2, 3], 2)
        from repro.cxl import Source
        for shard in session.devices:
            assert shard.cxl.counters.reads[Source.HOST] > 0
            assert shard.cxl.counters.writes[Source.HOST] > 0
            assert shard.driver.launches > 0

    def test_kv_context_tracked(self, setup):
        weights, _ = setup
        session = TensorParallelSession(weights, degree=2)
        session.generate([1, 2, 3], 4)
        assert session.context_len == 3 + 3  # prompt + fed-back tokens

    def test_shard_memory_smaller_than_full_model(self, setup):
        weights, _ = setup
        full = TensorParallelSession(weights, degree=1)
        split = TensorParallelSession(weights, degree=4)
        assert split.devices[0].memory.allocated_bytes \
            < full.devices[0].memory.allocated_bytes


class TestValidation:
    def test_degree_must_divide_heads(self, setup):
        weights, _ = setup
        with pytest.raises(ParallelismError):
            TensorParallelSession(weights, degree=3)

    def test_degree_positive(self, setup):
        weights, _ = setup
        with pytest.raises(ParallelismError):
            TensorParallelSession(weights, degree=0)

    def test_empty_prompt_rejected(self, setup):
        weights, _ = setup
        session = TensorParallelSession(weights, degree=2)
        with pytest.raises(ConfigurationError):
            session.generate([], 3)

    def test_overlong_sequence_rejected(self):
        cfg = tiny_config(max_seq_len=8)
        session = TensorParallelSession(random_weights(cfg, seed=1),
                                        degree=2)
        with pytest.raises(ConfigurationError):
            session.generate([1, 2, 3, 4, 5], 6)

    def test_out_of_vocab_token_rejected(self, setup):
        weights, _ = setup
        session = TensorParallelSession(weights, degree=2)
        with pytest.raises(ConfigurationError):
            session.generate([99999], 2)
