"""Mixture-of-Experts configs and op graphs (§IX extension)."""

import pytest

from repro.errors import ConfigurationError
from repro.llm import OPT_13B, tiny_config
from repro.llm.moe import MoEConfig, moe_gen_stage_ops
from repro.llm.graph import gen_stage_ops
from repro.llm.ops import total_flops, total_weight_bytes


class TestMoEConfig:
    def test_stored_params_grow_with_experts(self):
        small = MoEConfig(base=OPT_13B, num_experts=4, top_k=2)
        big = MoEConfig(base=OPT_13B, num_experts=16, top_k=2)
        assert big.num_params > small.num_params > OPT_13B.num_params

    def test_active_params_independent_of_expert_count(self):
        a = MoEConfig(base=OPT_13B, num_experts=4, top_k=2)
        b = MoEConfig(base=OPT_13B, num_experts=32, top_k=2)
        # Routers differ slightly; the expert FFN term must not.
        assert a.active_params_per_token == pytest.approx(
            b.active_params_per_token, rel=0.01)

    def test_top_k_equals_experts_is_dense(self):
        moe = MoEConfig(base=OPT_13B, num_experts=4, top_k=4)
        assert moe.active_params_per_token == moe.num_params

    def test_capacity_amplification(self):
        moe = MoEConfig(base=OPT_13B, num_experts=16, top_k=2)
        assert moe.capacity_amplification > 3.0

    def test_name_encodes_structure(self):
        assert MoEConfig(base=OPT_13B, num_experts=8, top_k=2).name \
            == "OPT-13B-MoE8x2"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MoEConfig(base=OPT_13B, num_experts=1)
        with pytest.raises(ConfigurationError):
            MoEConfig(base=OPT_13B, num_experts=4, top_k=5)


class TestMoEOps:
    def test_gen_streams_only_topk_experts(self):
        cfg = tiny_config()
        moe = MoEConfig(base=cfg, num_experts=8, top_k=2)
        ops = moe_gen_stage_ops(moe, context_len=16)
        streamed = total_weight_bytes(ops)
        assert streamed == pytest.approx(
            moe.active_params_per_token * cfg.dtype_bytes, rel=0.15)

    def test_moe_gen_traffic_below_dense_equivalent_capacity(self):
        """The §IX trade: stored params >> streamed params per token."""
        cfg = tiny_config()
        moe = MoEConfig(base=cfg, num_experts=8, top_k=2)
        streamed = total_weight_bytes(moe_gen_stage_ops(moe, 16))
        assert streamed < moe.param_bytes / 2

    def test_topk_scales_ffn_work(self):
        cfg = tiny_config()
        one = MoEConfig(base=cfg, num_experts=8, top_k=1)
        two = MoEConfig(base=cfg, num_experts=8, top_k=2)
        f1 = total_flops(moe_gen_stage_ops(one, 16))
        f2 = total_flops(moe_gen_stage_ops(two, 16))
        assert f2 > f1

    def test_attention_matches_dense_model(self):
        cfg = tiny_config()
        moe = MoEConfig(base=cfg, num_experts=4, top_k=4)
        moe_ops = {op.name: op for op in moe_gen_stage_ops(moe, 16)}
        dense_ops = {op.name: op for op in gen_stage_ops(cfg, 16)}
        for name in ("layer0.qkv", "layer0.attn_score", "layer0.proj"):
            assert moe_ops[name].flops == dense_ops[name].flops

    def test_router_op_present(self):
        cfg = tiny_config()
        moe = MoEConfig(base=cfg, num_experts=4, top_k=2)
        names = {op.name for op in moe_gen_stage_ops(moe, 16)}
        assert "layer0.router" in names
        assert "layer0.expert1.fc2" in names
