"""Shape checks against the paper's headline numbers.

These are the reproduction's acceptance tests: directions must match the
paper exactly (who wins), and magnitudes must land within generous bands
(our substrate is an analytical/simulation model, not the authors'
testbed).  Anything that drifts outside a band after a refactor means a
calibration regression.
"""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def fig10():
    return run_experiment("fig10")


@pytest.fixture(scope="module")
def fig11():
    return run_experiment("fig11")


class TestFig10Anchors:
    def test_gpu_slightly_faster_on_opt13b(self, fig10):
        """Paper: CXL-PNM has 10.8% lower throughput at 1024 tokens."""
        row = [r for r in fig10.rows if r["output_tokens"] == 1024][0]
        assert -0.20 < row["throughput_delta"] < 0.0

    def test_energy_efficiency_near_2_9x(self, fig10):
        row = [r for r in fig10.rows if r["output_tokens"] == 1024][0]
        assert row["energy_eff_ratio"] == pytest.approx(2.9, rel=0.2)

    def test_power_operating_points(self, fig10):
        row = [r for r in fig10.rows if r["output_tokens"] == 1024][0]
        assert row["gpu_power_w"] == pytest.approx(253, rel=0.1)
        assert row["pnm_power_w"] == pytest.approx(77.1, rel=0.15)

    def test_energy_ratio_grows_with_output_length(self, fig10):
        sweep = [r for r in fig10.rows
                 if isinstance(r["output_tokens"], int)]
        ratios = [r["energy_eff_ratio"] for r in sweep]
        assert ratios == sorted(ratios)

    def test_small_models_favor_pnm_large_favor_gpu(self, fig10):
        """Paper: 59%/38%/2% lower latency on 1.3B/2.7B/6.7B; 10.9%
        higher on 13B."""
        deltas = {r["output_tokens"]: r["throughput_delta"]
                  for r in fig10.rows
                  if "latency_delta" in str(r["output_tokens"])}
        assert deltas["OPT-1.3B latency_delta"] < -0.40
        assert deltas["OPT-2.7B latency_delta"] < -0.25
        assert -0.15 < deltas["OPT-6.7B latency_delta"] < 0.05
        assert 0.0 < deltas["OPT-13B latency_delta"] < 0.20

    def test_opt30b_offload_collapse(self, fig10):
        """Paper: 138.8x lower latency, 127.9x higher energy efficiency
        when the GPU must stream parameters over PCIe."""
        row = [r for r in fig10.rows
               if "OPT-30B" in str(r["output_tokens"])][0]
        assert 80 < row["throughput_delta"] < 250      # latency ratio
        assert 80 < row["energy_eff_ratio"] < 250


class TestFig11Anchors:
    def _row(self, fig11, label):
        return [r for r in fig11.rows
                if "CXL-PNM" in r["config"] and label in r["config"]][0]

    def test_dp8_throughput_and_energy(self, fig11):
        """Paper: +53% throughput, 4.4x energy efficiency."""
        row = self._row(fig11, "DP=8")
        assert row["throughput_delta"] == pytest.approx(0.53, abs=0.12)
        assert row["energy_eff_ratio"] == pytest.approx(4.4, rel=0.15)

    def test_dp4_mp2_latency_cut(self, fig11):
        """Paper: 44% lower latency than DP=8, +36% throughput."""
        row = self._row(fig11, "DP=4 x MP=2")
        assert row["latency_vs_dp8"] == pytest.approx(-0.44, abs=0.08)
        assert row["throughput_delta"] == pytest.approx(0.36, abs=0.20)

    def test_mp8_beats_gpu_on_all_axes(self, fig11):
        """Paper: -23% latency, +31% throughput, 2.9x energy."""
        row = self._row(fig11, "DP=1 x MP=8")
        assert row["latency_delta"] == pytest.approx(-0.23, abs=0.10)
        assert row["throughput_delta"] == pytest.approx(0.31, abs=0.12)
        assert row["energy_eff_ratio"] > 2.5

    def test_latency_throughput_tradeoff_monotone(self, fig11):
        """More model parallelism -> lower latency, lower throughput."""
        pnm_rows = [r for r in fig11.rows if "CXL-PNM" in r["config"]]
        latencies = [r["latency_s"] for r in pnm_rows]
        throughputs = [r["throughput_tok_s"] for r in pnm_rows]
        assert latencies == sorted(latencies, reverse=True)
        assert throughputs == sorted(throughputs, reverse=True)


class TestTable3Anchors:
    def test_daily_quantities_near_paper(self):
        rows = run_experiment("table3").rows
        gpu = [r for r in rows if "GPU" in r["appliance"]][0]
        pnm = [r for r in rows if r["appliance"].startswith("CXL-PNM")][0]
        # Paper: 3.7 / 5.65 M tokens, 43.2 / 15.4 kWh, $4.47 / $1.59.
        assert gpu["Mtokens_per_day"] == pytest.approx(3.7, rel=0.12)
        assert pnm["Mtokens_per_day"] == pytest.approx(5.65, rel=0.12)
        assert gpu["kwh_per_day"] == pytest.approx(43.2, rel=0.12)
        assert pnm["kwh_per_day"] == pytest.approx(15.4, rel=0.12)
        assert gpu["usd_per_day"] == pytest.approx(4.47, rel=0.12)
        assert pnm["usd_per_day"] == pytest.approx(1.59, rel=0.12)

    def test_hardware_cost_30_percent_lower(self):
        rows = run_experiment("table3").rows
        ratio_row = [r for r in rows if "ratio" in r["appliance"]][0]
        assert ratio_row["hardware_usd"] == pytest.approx(10 / 7, rel=0.01)


class TestScalabilityAnchors:
    def test_device_counts_and_cost_saving(self):
        rows = run_experiment("scalability").rows
        pnm = [r for r in rows if r["platform"] == "CXL-PNM"][0]
        gpu = [r for r in rows if r["platform"].startswith("GPU")][0]
        saving = [r for r in rows if "saving" in r["platform"]][0]
        assert pnm["devices"] == 3
        assert gpu["devices"] == 16
        assert saving["hardware_usd"] == pytest.approx(0.87, abs=0.02)

    def test_gpu_comm_share_exceeds_pnm(self):
        rows = run_experiment("scalability").rows
        pnm = [r for r in rows if r["platform"] == "CXL-PNM"][0]
        gpu = [r for r in rows if r["platform"].startswith("GPU")][0]
        assert gpu["comm_fraction"] > 3 * pnm["comm_fraction"]
        assert gpu["comm_fraction"] == pytest.approx(0.30, abs=0.08)
