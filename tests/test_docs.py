"""Docs CI job: module docstrings and the API.md ↔ source bijection."""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
CHECKER = REPO_ROOT / "tools" / "check_docs.py"

_spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def _mini_repo(tmp_path, api_text, modules):
    """Lay out a miniature repo: {dotted-suffix: source} under src/repro."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "API.md").write_text(api_text)
    for rel, source in modules.items():
        path = tmp_path / "src" / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return tmp_path


class TestRealTree:
    def test_repo_passes(self):
        assert check_docs.run_checks(REPO_ROOT) == []

    def test_cli_exit_code(self):
        result = subprocess.run(
            [sys.executable, str(CHECKER), "--root", str(REPO_ROOT)],
            capture_output=True, text=True)
        assert result.returncode == 0, result.stdout + result.stderr
        assert "docs check OK" in result.stdout

    def test_every_module_is_enumerated(self):
        modules = check_docs.source_modules(REPO_ROOT)
        # Spot-check the corners of the mapping rule: the root package,
        # dunder modules, and deep leaves all participate.
        for dotted in ("repro", "repro.__main__", "repro.faults",
                       "repro.faults.chaos_harness", "repro.memory.ecc"):
            assert dotted in modules, dotted


class TestFailureModes:
    API_OK = "`repro`\n`repro.good`\n"

    def test_missing_docstring_reported(self, tmp_path):
        root = _mini_repo(tmp_path, self.API_OK, {
            "__init__.py": '"""Root."""\n',
            "good.py": "x = 1\n"})
        problems = check_docs.run_checks(root)
        assert any("missing module docstring: repro.good" in p
                   for p in problems)

    def test_undocumented_module_reported(self, tmp_path):
        root = _mini_repo(tmp_path, "`repro`\n", {
            "__init__.py": '"""Root."""\n',
            "good.py": '"""Fine."""\n'})
        problems = check_docs.run_checks(root)
        assert any("not documented" in p and "repro.good" in p
                   for p in problems)

    def test_stale_doc_name_reported(self, tmp_path):
        root = _mini_repo(
            tmp_path, self.API_OK + "`repro.ghost`\n", {
                "__init__.py": '"""Root."""\n',
                "good.py": '"""Fine."""\n'})
        problems = check_docs.run_checks(root)
        assert any("stale name" in p and "repro.ghost" in p
                   for p in problems)

    def test_class_references_are_not_module_tokens(self, tmp_path):
        # `repro.good.ClassName` (capitalized segment) and prose in
        # backticks must not count as module mentions.
        api = self.API_OK + "`repro.good.CXLLink` `python -m repro run`\n"
        root = _mini_repo(tmp_path, api, {
            "__init__.py": '"""Root."""\n',
            "good.py": '"""Fine."""\n'})
        assert check_docs.run_checks(root) == []

    def test_clean_mini_repo_passes(self, tmp_path):
        root = _mini_repo(tmp_path, self.API_OK, {
            "__init__.py": '"""Root."""\n',
            "good.py": '"""Fine."""\n'})
        assert check_docs.run_checks(root) == []


class TestGuideRegistry:
    """Invariant 3: operator guides exist and are linked from the entry
    docs.  The check is gated on README.md, so the miniature repos above
    (which have none) never trip it."""

    MODULES = {"__init__.py": '"""Root."""\n'}

    def test_real_tree_has_all_guides_linked(self):
        assert check_docs.guide_problems(REPO_ROOT) == []

    def test_skipped_without_readme(self, tmp_path):
        root = _mini_repo(tmp_path, "`repro`\n", self.MODULES)
        assert check_docs.guide_problems(root) == []

    def test_missing_guide_reported(self, tmp_path):
        root = _mini_repo(tmp_path, "`repro`\n", self.MODULES)
        (root / "README.md").write_text("see docs/SERVING.md\n")
        problems = check_docs.guide_problems(root)
        assert any("missing operator guide" in p and "SERVING.md" in p
                   for p in problems)

    def test_unlinked_guide_reported(self, tmp_path):
        root = _mini_repo(tmp_path, "`repro`\n", self.MODULES)
        (root / "README.md").write_text("no guide links here\n")
        (root / "docs" / "SERVING.md").write_text("# Serving\n")
        problems = check_docs.guide_problems(root)
        assert any("not linked from README.md" in p for p in problems)
        assert any("not linked from" in p and "API.md" in p
                   for p in problems)

    def test_linked_guide_passes(self, tmp_path):
        api = "`repro`\nOperators: see [the serving guide](SERVING.md).\n"
        root = _mini_repo(tmp_path, api, self.MODULES)
        (root / "README.md").write_text("see docs/SERVING.md\n")
        (root / "docs" / "SERVING.md").write_text("# Serving\n")
        assert check_docs.guide_problems(root) == []
