"""Checkpoint save/load round-trips."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.llm import ReferenceModel, random_weights, tiny_config
from repro.llm.checkpoint import load_checkpoint, save_checkpoint
from repro.runtime import InferenceSession


class TestRoundTrip:
    def test_config_survives(self, tmp_path, tiny_weights, tiny_cfg):
        path = save_checkpoint(tiny_weights, tmp_path / "model.npz")
        loaded = load_checkpoint(path)
        assert loaded.config == tiny_cfg

    def test_tensors_bitwise_identical(self, tmp_path, tiny_weights):
        path = save_checkpoint(tiny_weights, tmp_path / "model.npz")
        loaded = load_checkpoint(path)
        for name, tensor in tiny_weights.named_tensors().items():
            np.testing.assert_array_equal(
                loaded.named_tensors()[name], tensor, err_msg=name)

    def test_generation_identical_after_reload(self, tmp_path):
        weights = random_weights(tiny_config(), seed=33)
        path = save_checkpoint(weights, tmp_path / "model")
        loaded = load_checkpoint(path)
        original = ReferenceModel(weights).generate([4, 5], 6)
        reloaded = ReferenceModel(loaded).generate([4, 5], 6)
        assert original == reloaded

    def test_session_runs_from_checkpoint(self, tmp_path):
        weights = random_weights(tiny_config(), seed=34)
        path = save_checkpoint(weights, tmp_path / "model.npz")
        session = InferenceSession(load_checkpoint(path),
                                   simulate_timing=False)
        expected = ReferenceModel(weights).generate([9], 4)
        assert session.generate([9], 4).tokens == expected

    def test_suffix_added(self, tmp_path, tiny_weights):
        path = save_checkpoint(tiny_weights, tmp_path / "no_suffix")
        assert path.suffix == ".npz"


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_checkpoint(tmp_path / "absent.npz")

    def test_non_checkpoint_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ConfigurationError):
            load_checkpoint(path)

    def test_truncated_checkpoint(self, tmp_path, tiny_weights):
        path = save_checkpoint(tiny_weights, tmp_path / "model.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays.pop("layer0.w_qkv")
        np.savez(path, **arrays)
        with pytest.raises(ConfigurationError):
            load_checkpoint(path)
