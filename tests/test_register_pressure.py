"""Register-file pressure: the 63 MB budget really binds.

The compiler frees dead registers as it goes; these tests show the
capacity enforcement is real — a program that hoards live registers
beyond a bank's budget fails loudly, and the driver surfaces it as an
accelerator ERROR.
"""

import numpy as np
import pytest

from repro.accelerator import (
    DeviceMemory,
    Executor,
    RegisterFileState,
    Status,
    isa,
)
from repro.errors import AllocationError
from repro.runtime import CxlPnmDriver
from repro.units import KiB, MiB


def _hoarding_program(region_addr, rows, cols, count):
    """Load `count` tensors into distinct registers, never freeing."""
    return tuple(isa.DmaLoad(dst=f"m{i}", addr=region_addr,
                             shape=(rows, cols))
                 for i in range(count))


class TestCapacityEnforcement:
    def test_hoarding_overflows_small_rf(self):
        mem = DeviceMemory(4 * MiB)
        region = mem.store_named("x", np.zeros((64, 64), dtype=np.float32))
        rf = RegisterFileState(matrix_bytes=32 * KiB, logical_scale=0.5)
        executor = Executor(mem, rf)
        # Each tensor holds 8 KiB logical; 5 of them exceed 32 KiB.
        program = _hoarding_program(region.addr, 64, 64, 5)
        with pytest.raises(AllocationError):
            executor.execute(program)

    def test_freeing_keeps_fitting(self):
        mem = DeviceMemory(4 * MiB)
        region = mem.store_named("x", np.zeros((64, 64), dtype=np.float32))
        rf = RegisterFileState(matrix_bytes=32 * KiB, logical_scale=0.5)
        executor = Executor(mem, rf)
        program = []
        for i in range(8):
            program.append(isa.DmaLoad(dst=f"m{i}", addr=region.addr,
                                       shape=(64, 64)))
            program.append(isa.Free(regs=(f"m{i}",)))
        executor.execute(tuple(program))  # must not raise

    def test_compiled_stage_fits_real_rf(self, tiny_weights):
        """The compiler's Free placement keeps a full stage inside the
        real 63 MB register file."""
        from repro.accelerator import StageCompiler, load_model
        mem = DeviceMemory(64 * MiB)
        layout = load_model(mem, tiny_weights)
        executor = Executor(mem)  # default Table II budgets
        code = StageCompiler(layout).compile_sum_stage(list(range(8)))
        executor.execute(code)
        # After the stage, everything was freed.
        assert executor.registers.used_bytes("m") == 0

    def test_driver_reports_error_status_on_overflow(self):
        mem = DeviceMemory(4 * MiB)
        region = mem.store_named("x", np.zeros((64, 64), dtype=np.float32))
        driver = CxlPnmDriver(mem)
        driver._executor.registers = RegisterFileState(
            matrix_bytes=16 * KiB, logical_scale=0.5)
        driver.program(_hoarding_program(region.addr, 64, 64, 4))
        with pytest.raises(AllocationError):
            driver.launch()
        assert driver.control.status is Status.ERROR
