"""Multi-tenant SLO serving front end: arrivals, fair share, preemption.

Covers the production-traffic layer over the event kernel: arrival
process generators and replayable traces (bit-identical replay under a
seed), weighted fair-share tie-breaking across tenant classes, strict
priority tiers with preemption under KV pressure (including mid-macro
truncation and re-admission ordering), SLO-aware admission through the
typed ``AdmissionError`` path, and goodput-under-SLO accounting.

Timelines use ``ConstStep`` (prefill 1 s, decode 0.5 s) so every
expected number is hand-computable.
"""

import pytest

from repro.appliance import (
    ContinuousBatchScheduler,
    TenantClass,
    poisson_arrivals,
)
from repro.errors import AdmissionError, ConfigurationError
from repro.llm import (
    InferenceRequest,
    arrivals_for_shape,
    diurnal_arrivals,
    flash_crowd_arrivals,
    multi_tenant_workload,
    peak_kv_bytes,
    read_trace,
    steady_arrivals,
    tiny_config,
    write_trace,
    zipf_tenants,
)

CFG = tiny_config()


class ConstStep:
    """Hand-computable step model: fixed prefill and decode costs."""

    def __init__(self, prefill=1.0, decode=0.5):
        self.prefill = prefill
        self.decode = decode

    def prefill_s(self, input_len):
        return self.prefill

    def decode_step_s(self, batch, context_len):
        return self.decode


def _memory_for(batch, input_len=4, output_len=6):
    return CFG.param_bytes + batch * peak_kv_bytes(CFG, input_len,
                                                   output_len)


def _req(i, cls="default", input_len=4, output_len=6, tenant=0):
    return InferenceRequest(input_len, output_len, request_id=i,
                            tenant=tenant, tenant_class=cls)


def _run(requests, arrivals=None, memory=None, classes=None, **kwargs):
    scheduler = ContinuousBatchScheduler(
        ConstStep(), CFG, memory or _memory_for(8), classes=classes,
        **kwargs)
    return scheduler.run(requests, arrivals)


# -- arrival processes ----------------------------------------------------


class TestArrivalGenerators:
    def test_steady_matches_poisson(self):
        assert steady_arrivals(32, 5.0, seed=3) \
            == [float(t) for t in poisson_arrivals(32, 5.0, seed=3)]

    @pytest.mark.parametrize("shape", ["steady", "diurnal", "flash-crowd"])
    def test_shapes_deterministic_and_sorted(self, shape):
        a = arrivals_for_shape(shape, 64, 8.0, seed=11)
        b = arrivals_for_shape(shape, 64, 8.0, seed=11)
        assert a == b
        assert len(a) == 64
        assert a == sorted(a)
        assert all(t > 0 for t in a)
        assert a != arrivals_for_shape(shape, 64, 8.0, seed=12)

    def test_unknown_shape_rejected(self):
        with pytest.raises(ConfigurationError, match="arrival shape"):
            arrivals_for_shape("bursty", 8, 1.0)

    def test_diurnal_validation(self):
        with pytest.raises(ConfigurationError, match="swing"):
            diurnal_arrivals(8, 1.0, period_s=10.0, swing=1.0)
        with pytest.raises(ConfigurationError, match="period_s"):
            diurnal_arrivals(8, 1.0, period_s=0.0)

    def test_flash_crowd_is_denser_in_burst(self):
        # Base 10 req/s, +30 req/s for t in [5, 10): the burst window
        # should hold arrivals at several times the base density.
        arrivals = flash_crowd_arrivals(400, 10.0, burst_at_s=5.0,
                                        burst_rate_per_s=30.0,
                                        burst_len_s=5.0, seed=0)
        in_burst = sum(1 for t in arrivals if 5.0 <= t < 10.0)
        before = sum(1 for t in arrivals if t < 5.0)
        assert in_burst / 5.0 > 2.0 * (before / 5.0)

    def test_flash_crowd_validation(self):
        with pytest.raises(ConfigurationError, match="burst_rate"):
            flash_crowd_arrivals(8, 1.0, 1.0, -1.0, 1.0)


class TestZipfTenants:
    def test_deterministic_and_skewed(self):
        tenants = zipf_tenants(500, 8, skew=1.5, seed=2)
        assert tenants == zipf_tenants(500, 8, skew=1.5, seed=2)
        assert set(tenants) <= set(range(8))
        counts = [tenants.count(k) for k in range(8)]
        assert counts[0] == max(counts)
        assert counts[0] > counts[-1]

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="num_tenants"):
            zipf_tenants(8, 0)
        with pytest.raises(ConfigurationError, match="skew"):
            zipf_tenants(8, 4, skew=-0.5)

    def test_multi_tenant_workload_classes(self):
        requests = multi_tenant_workload(
            40, num_tenants=4, class_names=("premium", "standard"),
            seed=9)
        assert requests == multi_tenant_workload(
            40, num_tenants=4, class_names=("premium", "standard"),
            seed=9)
        for r in requests:
            expected = ("premium", "standard")[r.tenant % 2]
            assert r.tenant_class == expected
        assert {r.tenant_class for r in requests} \
            == {"premium", "standard"}


class TestRequestFields:
    def test_tenant_validation(self):
        with pytest.raises(ConfigurationError, match="tenant"):
            InferenceRequest(4, 4, tenant=-1)
        with pytest.raises(ConfigurationError, match="tenant_class"):
            InferenceRequest(4, 4, tenant_class="")

    def test_defaults_keep_equality(self):
        assert InferenceRequest(4, 4) == InferenceRequest(4, 4)


# -- replayable traces ----------------------------------------------------


class TestTraceReplay:
    def _workload(self):
        requests = multi_tenant_workload(
            24, num_tenants=4, class_names=("premium", "standard"),
            seed=5)
        arrivals = arrivals_for_shape("flash-crowd", 24, 6.0, seed=5)
        return requests, arrivals

    def test_round_trip_exact(self, tmp_path):
        requests, arrivals = self._workload()
        path = str(tmp_path / "trace.jsonl")
        assert write_trace(path, requests, arrivals) == 24
        replayed, replayed_arrivals = read_trace(path)
        assert replayed == requests
        assert replayed_arrivals == arrivals

    def test_replay_bit_identical_stats(self, tmp_path):
        requests, arrivals = self._workload()
        classes = [TenantClass("premium", weight=4.0, priority=1),
                   TenantClass("standard")]
        stats = _run(requests, arrivals, memory=_memory_for(3),
                     classes=classes)
        path = str(tmp_path / "trace.jsonl")
        write_trace(path, requests, arrivals)
        replayed, replayed_arrivals = read_trace(path)
        again = _run(replayed, replayed_arrivals,
                     memory=_memory_for(3), classes=classes)
        assert stats.as_dict() == again.as_dict()
        assert stats.class_breakdown() == again.class_breakdown()
        assert [(c.request.request_id, c.finish_s, c.first_token_s)
                for c in stats.completed] \
            == [(c.request.request_id, c.finish_s, c.first_token_s)
                for c in again.completed]

    def test_read_errors(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            read_trace(str(tmp_path / "missing.jsonl"))
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            read_trace(str(bad))
        partial = tmp_path / "partial.jsonl"
        partial.write_text('{"request_id": 0, "arrival_s": 0.0}\n')
        with pytest.raises(ConfigurationError, match="missing trace keys"):
            read_trace(str(partial))

    def test_write_length_mismatch(self, tmp_path):
        with pytest.raises(ConfigurationError, match="arrival times"):
            write_trace(str(tmp_path / "t.jsonl"), [_req(0)], [0.0, 1.0])


# -- tenant classes and fair share ----------------------------------------


class TestTenantClassConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="weight"):
            TenantClass("a", weight=0.0)
        with pytest.raises(ConfigurationError, match="ttft_target_s"):
            TenantClass("a", ttft_target_s=-1.0)
        with pytest.raises(ConfigurationError, match="non-empty"):
            TenantClass("")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ContinuousBatchScheduler(
                ConstStep(), CFG, _memory_for(4),
                classes=[TenantClass("a"), TenantClass("a")])


class TestFairShare:
    """KV room for one request serializes admissions: the completion
    order *is* the admission order the share policy produced."""

    def _order(self, classes, reqs):
        stats = _run(reqs, memory=_memory_for(1), classes=classes)
        assert not stats.rejected
        order = sorted(stats.completed, key=lambda c: c.finish_s)
        return [c.request.request_id for c in order]

    def test_equal_weights_alternate_name_tiebreak(self):
        # Equal weight, equal priority: exact service ties break by
        # class name, so "a" starts and the classes then alternate.
        reqs = [_req(0, "a"), _req(1, "a"), _req(2, "a"),
                _req(10, "b"), _req(11, "b"), _req(12, "b")]
        classes = [TenantClass("a"), TenantClass("b")]
        assert self._order(classes, reqs) == [0, 10, 1, 11, 2, 12]

    def test_weighted_share_two_to_one(self):
        # weight(a)=2 halves a's virtual-time increments: after the
        # opening a/b exchange, a admits twice per b admission.
        reqs = [_req(0, "a"), _req(1, "a"), _req(2, "a"),
                _req(10, "b"), _req(11, "b"), _req(12, "b")]
        classes = [TenantClass("a", weight=2.0), TenantClass("b")]
        assert self._order(classes, reqs) == [0, 10, 1, 2, 11, 12]

    def test_single_class_stays_fcfs(self):
        reqs = [_req(i) for i in range(4)]
        assert self._order(None, reqs) == [0, 1, 2, 3]


class TestPriorityTiers:
    def test_higher_tier_admits_first(self):
        reqs = [_req(0, "low"), _req(1, "low"),
                _req(10, "high"), _req(11, "high")]
        classes = [TenantClass("low"), TenantClass("high", priority=1)]
        stats = _run(reqs, memory=_memory_for(1), classes=classes)
        order = [c.request.request_id
                 for c in sorted(stats.completed,
                                 key=lambda c: c.finish_s)]
        assert order == [10, 11, 0, 1]

    def test_blocked_tier_blocks_lower_tiers(self):
        # Budget: one small peak + one big peak - 1 byte.  The small
        # high request admits; the big high request then blocks (no
        # KV room, nothing lower-priority to preempt), and the strict
        # tier rule keeps the small low request out even though its
        # peak would fit — no low-priority sneak-past.
        p_small = peak_kv_bytes(CFG, 4, 6)
        p_big = peak_kv_bytes(CFG, 8, 12)
        memory = CFG.param_bytes + p_small + p_big - 1
        reqs = [_req(0, "high"),
                _req(1, "high", input_len=8, output_len=12),
                _req(2, "low")]
        classes = [TenantClass("low"), TenantClass("high", priority=1)]
        stats = _run(reqs, memory=memory, classes=classes)
        by_id = {c.request.request_id: c for c in stats.completed}
        assert set(by_id) == {0, 1, 2}
        assert by_id[2].start_s >= by_id[1].start_s


class TestPreemption:
    """Two residents fill the KV budget; a priority-1 arrival at
    t=2.5 lands mid macro-step.

    Timeline: L0/L1 prefill back-to-back in [0, 2] (first tokens at 1
    and 2), then start a 5-step decode macro with boundaries at 2.5,
    3, ... 4.5.  H0's arrival at 2.5 finds the budget full, preempts
    the most recently admitted victim (L1, batch-position tie-break),
    truncates the macro at the 2.5 boundary, and prefills in
    [2.5, 3.5] — so H0's first token lands at exactly 3.5.  Without
    mid-macro truncation it could not land before 5.5.
    """

    def _scenario(self):
        classes = [TenantClass("low"), TenantClass("high", priority=1)]
        reqs = [_req(0, "low"), _req(1, "low"),
                _req(10, "high"), _req(2, "low")]
        arrivals = [0.0, 0.0, 2.5, 2.6]
        return _run(reqs, arrivals, memory=_memory_for(2),
                    classes=classes)

    def test_mid_macro_preemption_timeline(self):
        stats = self._scenario()
        by_id = {c.request.request_id: c for c in stats.completed}
        assert set(by_id) == {0, 1, 10, 2}
        assert by_id[10].first_token_s == pytest.approx(3.5)
        assert stats.preemptions == 1
        assert by_id[1].preemptions == 1
        assert by_id[0].preemptions == 0

    def test_victim_is_most_recently_admitted(self):
        stats = self._scenario()
        by_id = {c.request.request_id: c for c in stats.completed}
        # L0 keeps its seat and its original first token.
        assert by_id[0].first_token_s == pytest.approx(1.0)
        # L1 restarts from prefill after capacity frees.
        assert by_id[1].first_token_s > 3.5

    def test_preempted_readmitted_before_waiting_class_mates(self):
        stats = self._scenario()
        by_id = {c.request.request_id: c for c in stats.completed}
        # L1 went back to the *front* of the low queue, so it restarts
        # before L2 even though L2 was never evicted.
        assert by_id[1].start_s < by_id[2].start_s

    def test_preemption_does_not_pollute_failover_stats(self):
        stats = self._scenario()
        assert stats.failover_latencies_s == []
        assert stats.failover_events == []
        assert all(c.failovers == 0 for c in stats.completed)

    def test_equal_priority_never_preempts(self):
        classes = [TenantClass("a"), TenantClass("b")]
        reqs = [_req(0, "a"), _req(1, "a"), _req(10, "b")]
        stats = _run(reqs, [0.0, 0.0, 2.5], memory=_memory_for(2),
                     classes=classes)
        assert stats.preemptions == 0
        assert all(c.preemptions == 0 for c in stats.completed)


# -- SLO admission and goodput --------------------------------------------


class TestSloAdmission:
    def test_ttft_shed_is_typed(self):
        # Prefill alone takes 1 s; a 0.5 s TTFT target can never be
        # met, so every gold request is shed via AdmissionError.
        classes = [TenantClass("gold", ttft_target_s=0.5)]
        reqs = [_req(0, "gold"), _req(1, "gold"), _req(2, "std")]
        stats = _run(reqs, memory=_memory_for(4), classes=classes,
                     slo_admission=True)
        assert len(stats.rejected) == 2
        for r in stats.rejected:
            assert isinstance(r.error, AdmissionError)
            assert "TTFT" in r.reason and "gold" in r.reason
        assert {c.request.request_id for c in stats.completed} == {2}

    def test_tbt_shed_is_typed(self):
        classes = [TenantClass("gold", tbt_target_s=0.4)]
        reqs = [_req(0, "gold")]
        stats = _run(reqs, memory=_memory_for(4), classes=classes,
                     slo_admission=True)
        assert len(stats.rejected) == 1
        assert "TBT" in stats.rejected[0].reason

    def test_no_shedding_without_flag(self):
        classes = [TenantClass("gold", ttft_target_s=0.5)]
        stats = _run([_req(0, "gold")], memory=_memory_for(4),
                     classes=classes)
        assert not stats.rejected
        assert stats.slo_attainment == 0.0
        assert stats.goodput_tokens_per_s == 0.0
        assert stats.throughput_tokens_per_s > 0.0

    def test_met_targets_count_as_goodput(self):
        # Single request: prefill [0,1], 5 decodes -> finish 3.5;
        # TTFT 1 s, mean TBT 0.5 s, both within targets.
        classes = [TenantClass("gold", ttft_target_s=1.5,
                               tbt_target_s=0.6)]
        stats = _run([_req(0, "gold")], memory=_memory_for(4),
                     classes=classes)
        assert stats.slo_attainment == 1.0
        assert stats.goodput_tokens_per_s \
            == stats.throughput_tokens_per_s

    def test_untargeted_class_always_meets(self):
        stats = _run([_req(0), _req(1)], memory=_memory_for(4))
        assert stats.slo_attainment == 1.0
        assert stats.goodput_tokens_per_s \
            == stats.throughput_tokens_per_s

    def test_class_breakdown_rows(self):
        classes = [TenantClass("gold", ttft_target_s=0.5),
                   TenantClass("std")]
        reqs = [_req(0, "gold"), _req(1, "std"), _req(2, "std")]
        stats = _run(reqs, memory=_memory_for(4), classes=classes,
                     slo_admission=True)
        rows = stats.class_breakdown()
        assert set(rows) == {"gold", "std"}
        assert rows["gold"]["rejected"] == 1.0
        assert rows["gold"]["completed"] == 0.0
        assert rows["std"]["completed"] == 2.0
        assert rows["std"]["slo_attainment"] == 1.0
        assert rows["std"]["goodput_tokens_per_s"] \
            == rows["std"]["throughput_tokens_per_s"]

    def test_readmitted_victims_never_shed(self):
        # The preemption victim (L1) re-runs admission with a blown
        # queue wait; the SLO gate must not discard its partial work.
        classes = [TenantClass("low", ttft_target_s=4.0),
                   TenantClass("high", priority=1)]
        reqs = [_req(0, "low"), _req(1, "low"), _req(10, "high")]
        stats = _run(reqs, [0.0, 0.0, 2.5], memory=_memory_for(2),
                     classes=classes, slo_admission=True)
        by_id = {c.request.request_id: c for c in stats.completed}
        assert 1 in by_id and by_id[1].preemptions == 1
