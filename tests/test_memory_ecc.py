"""SECDED codec and RAS models (§IX)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.memory.ecc import (
    CODEWORD_BITS,
    DATA_BITS,
    DecodeStatus,
    InlineEccConfig,
    ScrubPolicy,
    decode,
    encode,
    inject_errors,
)
from repro.units import GB

WORDS = [0, 1, 0xFFFF_FFFF_FFFF_FFFF, 0xDEAD_BEEF_CAFE_F00D,
         0x8000_0000_0000_0000, 0x5555_5555_5555_5555]


class TestCodec:
    @pytest.mark.parametrize("word", WORDS)
    def test_clean_roundtrip(self, word):
        result = decode(encode(word))
        assert result.status is DecodeStatus.OK
        assert result.word == word

    @pytest.mark.parametrize("word", WORDS)
    @pytest.mark.parametrize("pos", [0, 1, 7, 35, 63, 70, 71])
    def test_single_bit_error_corrected(self, word, pos):
        corrupted = inject_errors(encode(word), [pos])
        result = decode(corrupted)
        assert result.status is DecodeStatus.CORRECTED
        assert result.word == word
        assert result.flipped_position == pos

    @pytest.mark.parametrize("word", WORDS[:3])
    @pytest.mark.parametrize("positions", [(0, 1), (5, 40), (70, 71),
                                           (0, 71)])
    def test_double_bit_error_detected(self, word, positions):
        corrupted = inject_errors(encode(word), list(positions))
        assert decode(corrupted).status is DecodeStatus.DETECTED

    @settings(max_examples=60, deadline=None)
    @given(word=st.integers(0, (1 << DATA_BITS) - 1),
           pos=st.integers(0, CODEWORD_BITS - 1))
    def test_secded_property_single(self, word, pos):
        """Every 1-bit flip of every codeword corrects back exactly."""
        result = decode(inject_errors(encode(word), [pos]))
        assert result.status is DecodeStatus.CORRECTED
        assert result.word == word

    @settings(max_examples=60, deadline=None)
    @given(word=st.integers(0, (1 << DATA_BITS) - 1),
           positions=st.lists(st.integers(0, CODEWORD_BITS - 1),
                              min_size=2, max_size=2, unique=True))
    def test_secded_property_double(self, word, positions):
        """Every distinct 2-bit flip is detected, never miscorrected."""
        result = decode(inject_errors(encode(word), positions))
        assert result.status is DecodeStatus.DETECTED

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            encode(1 << DATA_BITS)
        with pytest.raises(ConfigurationError):
            decode(np.zeros(10, dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            inject_errors(encode(0), [CODEWORD_BITS])


class TestInlineEcc:
    def test_overhead_is_one_ninth(self):
        cfg = InlineEccConfig(module_capacity_bytes=512 * GB)
        assert cfg.parity_overhead_fraction == pytest.approx(8 / 72)
        assert cfg.usable_capacity_bytes == pytest.approx(
            512 * GB * (1 - 8 / 72), rel=1e-9)

    def test_partial_coverage_scales(self):
        cfg = InlineEccConfig(module_capacity_bytes=512 * GB,
                              covered_fraction=0.5)
        assert cfg.parity_overhead_fraction == pytest.approx(4 / 72)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InlineEccConfig(module_capacity_bytes=0)
        with pytest.raises(ConfigurationError):
            InlineEccConfig(module_capacity_bytes=1, covered_fraction=1.5)


class TestScrubPolicy:
    def test_shorter_interval_fewer_uncorrectables(self):
        fast = ScrubPolicy(1e-12, scrub_interval_hours=1.0)
        slow = ScrubPolicy(1e-12, scrub_interval_hours=24.0)
        assert fast.uncorrectable_rate_per_hour(512 * GB) \
            < slow.uncorrectable_rate_per_hour(512 * GB)

    def test_shorter_interval_more_scrub_bandwidth(self):
        fast = ScrubPolicy(1e-12, 1.0)
        slow = ScrubPolicy(1e-12, 24.0)
        assert fast.scrub_bandwidth_bytes_per_s(512 * GB) \
            == pytest.approx(24 * slow.scrub_bandwidth_bytes_per_s(512 * GB))

    def test_zero_error_rate_is_safe(self):
        policy = ScrubPolicy(0.0, 1.0)
        assert policy.uncorrectable_rate_per_hour(512 * GB) == 0.0

    def test_rate_scales_with_capacity(self):
        policy = ScrubPolicy(1e-12, 4.0)
        small = policy.uncorrectable_rate_per_hour(64 * GB)
        big = policy.uncorrectable_rate_per_hour(512 * GB)
        assert big == pytest.approx(8 * small, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScrubPolicy(-1e-12, 1.0)
        with pytest.raises(ConfigurationError):
            ScrubPolicy(1e-12, 0.0)
        with pytest.raises(ConfigurationError):
            ScrubPolicy(1e-12, 1.0).uncorrectable_rate_per_hour(0)
