"""Smoke tests: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", [e for e in EXAMPLES
                                    if e != "paper_figures.py"])
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n"
        f"{result.stderr[-2000:]}")
    assert result.stdout.strip(), f"{script} printed nothing"


def test_paper_figures_subset_runs(tmp_path):
    """Run the all-figures driver on two cheap artifacts only."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "paper_figures.py"),
         "table1", "table2"],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "LPDDR5X" in result.stdout
