"""Instruction-level simulator: scheduling, overlap, validation."""

import pytest

from repro.accelerator import CXLPNMDevice, isa, timing_program
from repro.llm import OPT_13B, OPT_1_3B, OPT_6_7B, tiny_config
from repro.perf.analytical import InferenceTimer, PnmPerfModel
from repro.perf.simulator import AcceleratorSimulator


@pytest.fixture(scope="module")
def sim():
    return AcceleratorSimulator(CXLPNMDevice())


class TestScheduling:
    def test_dependent_instructions_serialize(self, sim):
        program = (
            isa.DmaLoad(dst="m0", addr=0, shape=(128, 128)),
            isa.VpuGelu(dst="m1", src="m0"),
            isa.VpuGelu(dst="m2", src="m1"),
        )
        result = sim.run(program)
        total_busy = sum(result.unit_busy_s.values())
        assert result.total_time_s == pytest.approx(total_busy, rel=0.01)

    def test_independent_units_overlap(self, sim):
        big = (256, 4096)
        program = (
            isa.DmaLoad(dst="m0", addr=0, shape=big),
            isa.DmaLoad(dst="m2", addr=0, shape=big),
            isa.VpuGelu(dst="m1", src="m0"),     # overlaps second DMA
            isa.VpuGelu(dst="m3", src="m2"),
        )
        result = sim.run(program)
        total_busy = sum(result.unit_busy_s.values())
        assert result.total_time_s < total_busy

    def test_barrier_serializes(self, sim):
        shape = (64, 64)
        base = (
            isa.DmaLoad(dst="m0", addr=0, shape=shape),
            isa.DmaLoad(dst="m1", addr=0, shape=shape),
        )
        with_barrier = (
            base[0], isa.Barrier(), base[1],
        )
        assert sim.run(with_barrier).total_time_s \
            >= sim.run(base).total_time_s

    def test_waw_hazard_respected(self, sim):
        program = (
            isa.DmaLoad(dst="m0", addr=0, shape=(64, 64)),
            isa.VpuGelu(dst="m1", src="m0"),
            isa.DmaLoad(dst="m0", addr=0, shape=(64, 64)),  # WAR on m0
        )
        result = sim.run(program)
        assert result.total_time_s > 0

    def test_unit_busy_accounting(self, sim):
        program = timing_program(tiny_config(), batch_tokens=1, ctx_prev=4)
        result = sim.run(program)
        assert result.unit_busy_s[isa.Unit.ADDER_TREE] > 0
        assert result.unit_busy_s[isa.Unit.VPU] > 0
        assert result.unit_busy_s[isa.Unit.DMA] > 0
        assert result.unit_busy_s[isa.Unit.PE_ARRAY] == 0  # gen stage

    def test_utilization_helper(self, sim):
        program = timing_program(tiny_config(), batch_tokens=4, ctx_prev=0)
        result = sim.run(program)
        assert 0 <= result.utilization(isa.Unit.PE_ARRAY) <= 1.0


class TestGenStageBehaviour:
    def test_gen_stage_bandwidth_bound(self, sim):
        """The gen stage must stream ~all parameters at near the device's
        effective bandwidth — the core CXL-PNM premise."""
        program = timing_program(OPT_6_7B, batch_tokens=1, ctx_prev=127)
        result = sim.run(program)
        achieved = result.mem_bytes / result.total_time_s
        assert achieved > 0.85 * sim.device.effective_memory_bandwidth
        assert result.mem_bytes > OPT_6_7B.param_bytes * 0.95

    def test_sum_stage_compute_bound(self, sim):
        program = timing_program(OPT_1_3B, batch_tokens=64, ctx_prev=0)
        result = sim.run(program)
        achieved_flops = result.flops / result.total_time_s
        assert achieved_flops > 0.5 * sim.device.spec.peak_gemm_flops


class TestCrossValidation:
    """The §VII analog: two independent timing models must agree."""

    @pytest.mark.parametrize("config,batch,ctx_prev,tol", [
        (OPT_6_7B, 1, 575, 0.05),
        (OPT_13B, 1, 575, 0.05),
        (OPT_13B, 64, 0, 0.05),
        (OPT_1_3B, 1, 1023, 0.06),
    ])
    def test_simulator_matches_analytical(self, sim, config, batch,
                                          ctx_prev, tol):
        program = timing_program(config, batch_tokens=batch,
                                 ctx_prev=ctx_prev)
        sim_time = sim.run(program).total_time_s
        timer = InferenceTimer(config, PnmPerfModel(sim.device))
        if batch == 1:
            analytical = timer.gen_stage(ctx_prev + 1).time_s
        else:
            analytical = timer.sum_stage(batch).time_s
        assert sim_time == pytest.approx(analytical, rel=tol)
