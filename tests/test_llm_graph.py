"""Stage op graphs: structure, totals, tensor-parallel scaling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, ParallelismError
from repro.llm import OPT_13B, StageShape, tiny_config
from repro.llm.graph import (
    decoder_layer_ops,
    gen_stage_ops,
    inference_op_count,
    lm_head_ops,
    sum_stage_ops,
)
from repro.llm.ops import OpKind, total_flops, total_weight_bytes


class TestStageShape:
    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            StageShape(batch_tokens=0, context_len=4)

    def test_rejects_batch_beyond_context(self):
        with pytest.raises(ConfigurationError):
            StageShape(batch_tokens=8, context_len=4)


class TestGenStage:
    def test_gen_stage_is_gemv_dominated(self):
        ops = gen_stage_ops(OPT_13B, context_len=512)
        matmuls = [op for op in ops if op.kind.is_matmul]
        assert matmuls
        assert all(op.kind is OpKind.GEMV for op in matmuls)

    def test_gen_stage_streams_all_parameters(self):
        # A gen stage must read every layer weight plus the KV cache; the
        # weight-byte total should exceed the raw parameter bytes.
        ctx = 512
        ops = gen_stage_ops(OPT_13B, ctx)
        streamed = total_weight_bytes(ops)
        assert streamed > OPT_13B.param_bytes * 0.9
        # ... but not by more than params + KV + embeddings.
        bound = (OPT_13B.param_bytes + ctx * OPT_13B.kv_bytes_per_token()
                 + OPT_13B.embedding_params * 2)
        assert streamed < bound * 1.05

    def test_kv_traffic_grows_with_context(self):
        short = total_weight_bytes(gen_stage_ops(OPT_13B, 64))
        long = total_weight_bytes(gen_stage_ops(OPT_13B, 1024))
        expected_delta = (1024 - 64) * OPT_13B.kv_bytes_per_token()
        assert long - short == pytest.approx(expected_delta, rel=0.01)


class TestSumStage:
    def test_sum_stage_is_gemm_dominated(self):
        ops = sum_stage_ops(OPT_13B, input_len=64)
        matmuls = [op for op in ops if op.kind.is_matmul]
        gemms = [op for op in matmuls if op.kind is OpKind.GEMM]
        # All matmuls except the single-row LM head are GEMMs.
        assert len(matmuls) - len(gemms) == 1

    def test_sum_flops_scale_with_input_length(self):
        f32 = total_flops(sum_stage_ops(OPT_13B, 32))
        f64 = total_flops(sum_stage_ops(OPT_13B, 64))
        assert f64 / f32 == pytest.approx(2.0, rel=0.1)

    def test_sum_flops_approx_2_params_tokens(self):
        # Classic estimate: ~2 * N_params FLOPs per token.
        tokens = 64
        flops = total_flops(sum_stage_ops(OPT_13B, tokens))
        assert flops == pytest.approx(2 * OPT_13B.num_params * tokens,
                                      rel=0.1)


class TestTensorParallel:
    def test_tp_splits_matmul_weights(self):
        full = total_weight_bytes(gen_stage_ops(OPT_13B, 512))
        half = total_weight_bytes(gen_stage_ops(OPT_13B, 512,
                                                tensor_parallel=2))
        assert half < full * 0.6

    def test_tp_must_divide_heads(self):
        with pytest.raises(ParallelismError):
            gen_stage_ops(OPT_13B, 512, tensor_parallel=7)

    def test_tp_flops_conserved_across_group(self):
        cfg = tiny_config(num_heads=4)
        shape = StageShape(batch_tokens=2, context_len=8)
        full = total_flops(decoder_layer_ops(cfg, shape))
        split = total_flops(decoder_layer_ops(cfg, shape,
                                              tensor_parallel=2))
        # Matmul work halves; vector work (norms, residuals) replicates.
        assert full / 2 < split < full

    def test_tp_below_one_rejected(self):
        with pytest.raises(ParallelismError):
            decoder_layer_ops(tiny_config(),
                              StageShape(batch_tokens=1, context_len=1),
                              tensor_parallel=0)


class TestOpNaming:
    def test_layer_ops_have_qualified_names(self):
        ops = decoder_layer_ops(tiny_config(),
                                StageShape(batch_tokens=2, context_len=4),
                                layer_name="layer3")
        names = {op.name for op in ops}
        assert "layer3.qkv" in names
        assert "layer3.attn_score" in names
        assert "layer3.fc2" in names

    def test_lm_head_emits_single_row_gemv(self):
        cfg = tiny_config()
        ops = lm_head_ops(cfg, StageShape(batch_tokens=4, context_len=4))
        logits = [op for op in ops if op.name == "lm_head.logits"][0]
        assert logits.m == 1
        assert logits.n == cfg.vocab_size


@settings(max_examples=20, deadline=None)
@given(input_len=st.integers(1, 8), output_len=st.integers(1, 6))
def test_inference_op_count_linear_in_output(input_len, output_len):
    cfg = tiny_config()
    count = inference_op_count(cfg, input_len, output_len)
    per_stage = len(gen_stage_ops(cfg, input_len + 1))
    assert count == len(sum_stage_ops(cfg, input_len)) \
        + (output_len - 1) * per_stage
