"""End-to-end functional equivalence: accelerator == numpy reference.

The strongest correctness property in the reproduction: generating text
through the full stack (compiler -> driver -> instruction buffer ->
functional executor -> output buffer) produces *token-identical* results
to the plain-numpy golden transformer, across model shapes, prompts, and
completion modes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.llm import KVState, ReferenceModel, random_weights, tiny_config
from repro.runtime import CompletionMode, InferenceSession


def _session_and_reference(cfg, seed):
    weights = random_weights(cfg, seed=seed)
    return InferenceSession(weights, simulate_timing=False), \
        ReferenceModel(weights)


class TestTokenExactness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_generation_matches_reference(self, seed):
        session, ref = _session_and_reference(tiny_config(), seed)
        prompt = [5, 100, 42]
        trace = session.generate(prompt, 10)
        assert trace.tokens == ref.generate(prompt, 10)

    def test_deeper_model(self):
        cfg = tiny_config(num_layers=3, d_model=48, num_heads=3,
                          vocab_size=97)
        session, ref = _session_and_reference(cfg, 9)
        prompt = [1, 2, 3, 4, 5]
        assert session.generate(prompt, 6).tokens == ref.generate(prompt, 6)

    def test_single_head_model(self):
        cfg = tiny_config(num_heads=1, d_model=32)
        session, ref = _session_and_reference(cfg, 4)
        assert session.generate([7], 4).tokens == ref.generate([7], 4)

    def test_single_token_prompt_and_output(self):
        session, ref = _session_and_reference(tiny_config(), 5)
        assert session.generate([0], 1).tokens == ref.generate([0], 1)

    def test_polling_mode_equivalent(self):
        cfg = tiny_config()
        weights = random_weights(cfg, seed=6)
        interrupt = InferenceSession(weights, simulate_timing=False,
                                     completion_mode=CompletionMode.INTERRUPT)
        polling = InferenceSession(weights, simulate_timing=False,
                                   completion_mode=CompletionMode.POLLING)
        prompt = [10, 20, 30]
        assert interrupt.generate(prompt, 5).tokens == \
            polling.generate(prompt, 5).tokens
        assert polling.driver.poll_count > 0
        assert interrupt.interrupts_seen == 5

    @settings(max_examples=8, deadline=None)
    @given(prompt=st.lists(st.integers(0, 255), min_size=1, max_size=8),
           n=st.integers(1, 5))
    def test_equivalence_property(self, prompt, n):
        cfg = tiny_config(max_seq_len=32)
        if len(prompt) + n > cfg.max_seq_len:
            prompt = prompt[:4]
        weights = random_weights(cfg, seed=13)
        session = InferenceSession(weights, simulate_timing=False)
        ref = ReferenceModel(weights)
        assert session.generate(prompt, n).tokens == ref.generate(prompt, n)


class TestNumericalEquivalence:
    def test_logits_match_bitwise_for_sum_stage(self):
        """Beyond tokens: the device's LM-head input path must match the
        reference's float32 arithmetic exactly for the same stage."""
        cfg = tiny_config()
        weights = random_weights(cfg, seed=21)
        session = InferenceSession(weights, simulate_timing=False)
        ref = ReferenceModel(weights)
        prompt = [3, 1, 4]
        trace = session.generate(prompt, 1)
        kv = KVState()
        logits = ref.forward(prompt, kv)
        assert trace.tokens[0] == int(np.argmax(logits))
