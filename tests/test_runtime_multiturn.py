"""Multi-turn conversations: device-resident KV context across turns."""

import numpy as np
import pytest

from repro.errors import CapacityError
from repro.llm import KVState, ReferenceModel, random_weights, tiny_config
from repro.runtime import InferenceSession


def _reference_chat(model, turns):
    """Reference multi-turn: one persistent KV state across turns."""
    kv = KVState()
    outputs = []
    for prompt, num_tokens in turns:
        logits = model.forward(list(prompt), kv)
        tokens = [int(np.argmax(logits))]
        for _ in range(num_tokens - 1):
            logits = model.forward([tokens[-1]], kv)
            tokens.append(int(np.argmax(logits)))
        outputs.append(tokens)
    return outputs


class TestMultiTurn:
    def test_two_turns_match_reference(self):
        cfg = tiny_config()
        weights = random_weights(cfg, seed=17)
        session = InferenceSession(weights, simulate_timing=False)
        model = ReferenceModel(weights)
        turns = [([5, 9, 13], 4), ([2, 4], 3)]
        expected = _reference_chat(model, turns)
        got = [session.generate(turns[0][0], turns[0][1]).tokens,
               session.extend(turns[1][0], turns[1][1]).tokens]
        assert got == expected

    def test_three_turns_context_accumulates(self):
        cfg = tiny_config()
        weights = random_weights(cfg, seed=18)
        session = InferenceSession(weights, simulate_timing=False)
        session.generate([1, 2], 2)      # KV: 2 prompt + 1 fed back
        session.extend([3], 2)           # KV: 3 + 1 + 1
        session.extend([4, 5], 1)        # KV: 5 + 2 + 0
        assert session.context_len == 7

    def test_extend_equals_concatenated_generate(self):
        """Chatting turn-by-turn must equal one long generation when the
        intermediate outputs are fed back as the next turn's prompt."""
        cfg = tiny_config()
        weights = random_weights(cfg, seed=19)
        model = ReferenceModel(weights)
        session = InferenceSession(weights, simulate_timing=False)
        first = session.generate([7, 8, 9], 3).tokens
        second = session.extend([11], 2).tokens
        expected = _reference_chat(model, [([7, 8, 9], 3), ([11], 2)])
        assert [first, second] == expected

    def test_extend_respects_max_seq_len(self):
        cfg = tiny_config(max_seq_len=12)
        session = InferenceSession(random_weights(cfg, seed=20),
                                   simulate_timing=False)
        session.generate([1, 2, 3, 4], 4)
        with pytest.raises(CapacityError):
            session.extend([5, 6], 4)

    def test_reset_clears_context(self):
        cfg = tiny_config()
        weights = random_weights(cfg, seed=21)
        session = InferenceSession(weights, simulate_timing=False)
        a = session.generate([3, 4], 3).tokens
        session.reset()
        b = session.generate([3, 4], 3).tokens
        assert a == b
