"""End-to-end INT8 weight path: quantizer, compiler, executor, analysis.

The quantization contract, layer by layer:

* ``quantize_per_channel`` reconstructs every weight within half a
  quantization step (symmetric per-output-channel scales);
* an int8 session's greedy predictions agree with the fp32 session's
  on >= 95% of teacher-forced steps (both sessions see identical
  prefixes, so disagreements measure rounding, not divergence);
* the fp32 path is bit-identical to the pre-quantization compiler —
  ``quantize=None`` programs carry no int8 instruction and no aux
  addresses;
* ``ProgramCache`` patches quantized templates into exactly the
  program a fresh compile would emit;
* the static analyses know the new instructions: scale/bias windows
  are address-checked, int8 destinations charge int32 pressure, and
  PNM301/PNM302 flag scale-less and mixed-dtype programs that
  ``isa.validate_program`` deliberately still accepts.
"""

import numpy as np
import pytest

from repro.accelerator import isa
from repro.accelerator.compiler import (
    StageCompiler,
    batched_timing_program,
    load_model,
    quantize_per_channel,
    timing_layout,
    timing_program,
)
from repro.accelerator.memory import DeviceMemory
from repro.analysis import (
    dtype_diagnostics,
    memory_windows,
    register_pressure,
    verify_program,
)
from repro.errors import ConfigurationError, ExecutionError
from repro.llm import ReferenceModel, random_weights, tiny_config
from repro.llm.config import OPT_13B, LLMConfig
from repro.perf.calibration import weight_stream_bytes
from repro.perf.simulator import SimulatedStepTimer
from repro.runtime.session import InferenceSession
from repro.tco.energy import daily_weight_traffic_bytes

CFG = tiny_config()

#: Large enough that int8 rounding can plausibly flip argmaxes while
#: a 64+-step teacher-forced run stays fast.
ACC_CFG = LLMConfig(name="quant-test", d_model=128, num_heads=8,
                    d_ff=512, num_layers=2, vocab_size=512,
                    max_seq_len=128)
PROMPT = [11, 29, 3, 101, 7, 45]


class TestQuantizer:
    def test_roundtrip_within_half_step(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal((64, 48)).astype(np.float32)
        codes, scales = quantize_per_channel(w)
        assert codes.dtype == np.float32 and scales.dtype == np.float32
        assert np.all(codes == np.rint(codes))
        assert np.all(np.abs(codes) <= 127)
        err = np.abs(w - codes * scales)
        assert np.all(err <= scales / 2 + 1e-7)

    def test_zero_column_gets_unit_scale(self):
        w = np.zeros((8, 3), dtype=np.float32)
        w[:, 1] = 2.54
        codes, scales = quantize_per_channel(w)
        assert scales[0] == 1.0 and scales[2] == 1.0
        assert np.all(codes[:, 0] == 0) and np.all(codes[:, 2] == 0)
        assert scales[1] == pytest.approx(2.54 / 127)
        assert np.all(codes[:, 1] == 127)

    def test_load_model_rejects_unknown_mode(self):
        weights = random_weights(CFG, seed=0)
        with pytest.raises(ConfigurationError):
            load_model(DeviceMemory(64 << 20), weights, quantize="fp8")

    def test_int8_layout_has_scale_regions(self):
        weights = random_weights(CFG, seed=0)
        layout = load_model(DeviceMemory(64 << 20), weights,
                            quantize="int8")
        assert layout.quantize == "int8"
        assert "lm_head.scale" in layout.regions
        assert "layer0.w_qkv.scale" in layout.regions
        # Unquantized tensors get no scale sibling.
        assert "embedding.scale" not in layout.regions
        assert "layer0.kcache.scale" not in layout.regions


class TestInt8Accuracy:
    def test_teacher_forced_top1_agreement(self):
        weights = random_weights(ACC_CFG, seed=0)
        fp32 = InferenceSession(weights, simulate_timing=False)
        int8 = InferenceSession(weights, simulate_timing=False,
                                quantize="int8")
        num_tokens = 80
        ref = fp32.generate(PROMPT, num_tokens).tokens
        preds = [int8.generate(PROMPT, 1).tokens[0]]
        for token in ref[:-1]:
            preds.append(int8.extend([token], 1).tokens[0])
        agreement = sum(p == r for p, r in zip(preds, ref)) / num_tokens
        assert num_tokens >= 64
        assert agreement >= 0.95

    def test_fp32_session_unchanged_by_quantize_default(self):
        weights = random_weights(CFG, seed=1)
        expected = ReferenceModel(weights).generate(PROMPT[:3], 6)
        got = InferenceSession(weights,
                               simulate_timing=False
                               ).generate(PROMPT[:3], 6)
        assert got.tokens == list(expected)

    def test_int8_executor_requires_scales(self):
        weights = random_weights(CFG, seed=0)
        session = InferenceSession(weights, simulate_timing=False,
                                   quantize="int8")
        bad = [isa.DmaLoad("m0", session.layout.addr("input_buffer"),
                           (1, CFG.d_model)),
               isa.MpuMv("m1", "m0", session.layout.addr("lm_head"),
                         CFG.d_model, CFG.vocab_size, dtype="int8"),
               isa.DmaStore("m1", session.layout.output_region.addr,
                            shape=(1, CFG.vocab_size)),
               isa.Free(("m0", "m1"))]
        session.driver.program(bad)
        with pytest.raises(ExecutionError):
            session.driver.launch()


class TestCompilerEmission:
    def test_fp32_programs_bit_identical_to_seed(self):
        # The dtype plumbing must be invisible at quantize=None: no
        # int8 instruction, no aux stream, anywhere in the template.
        for program in (timing_program(CFG, 4, 0),
                        batched_timing_program(CFG, 4, 16)):
            for instr in program:
                assert getattr(instr, "dtype", "fp16") == "fp16"
                assert getattr(instr, "scale_addr", -1) == -1
                if isinstance(instr, (isa.MpuMv, isa.MpuMmPea)):
                    assert instr.bias_addr == -1

    def test_int8_matmuls_fuse_scale_and_bias(self):
        program = timing_program(CFG, 1, 16, quantize="int8")
        matmuls = [i for i in program
                   if isinstance(i, (isa.MpuMv, isa.MpuMmPea))]
        assert matmuls and all(m.dtype == "int8" for m in matmuls)
        assert all(m.scale_addr >= 0 for m in matmuls)
        # Layer matmuls fuse their bias; the LM head has none.
        assert sum(m.bias_addr >= 0 for m in matmuls) == len(matmuls) - 1
        # Fused bias means no separate VPU_BIAS on matmul outputs: the
        # only remaining VpuBias uses are outside the weight matmuls.
        fp16 = timing_program(CFG, 1, 16)
        n_bias = sum(isinstance(i, isa.VpuBias) for i in fp16)
        n_bias_q = sum(isinstance(i, isa.VpuBias) for i in program)
        assert n_bias_q == n_bias - 4 * CFG.num_layers

    def test_compiler_requires_scale_regions(self):
        weights = random_weights(CFG, seed=0)
        layout = load_model(DeviceMemory(64 << 20), weights)
        with pytest.raises(ConfigurationError):
            StageCompiler(layout, quantize="int8")

    def test_program_cache_patches_quantized_templates(self):
        weights = random_weights(CFG, seed=0)
        session = InferenceSession(weights, simulate_timing=False,
                                   quantize="int8")
        cache = session.program_cache
        fresh = StageCompiler(session.layout)
        # Warm the template with one token/context, then patch another:
        # the patched clone must equal a from-scratch compile exactly.
        cache.gen_stage(5, context_len=7)
        patched = cache.gen_stage(9, context_len=8)
        scratch = fresh.compile_gen_stage(9, context_len=8)
        assert list(patched) == list(scratch)


class TestTimingModel:
    def test_mem_bytes_arithmetic(self):
        load = isa.DmaLoad("m0", 0, (4, 8))
        assert load.mem_bytes(2) == 64
        assert isa.DmaLoad("m0", 0, (4, 8), dtype="int8").mem_bytes(2) == 32
        mv = isa.MpuMv("m1", "m0", 0, 16, 8)
        assert mv.mem_bytes(2) == 16 * 8 * 2
        q = isa.MpuMv("m1", "m0", 0, 16, 8, dtype="int8", scale_addr=64)
        # int8 weights stream at 1 byte/elem; scales at full width.
        assert q.mem_bytes(2) == 16 * 8 * 1 + 8 * 2
        qb = isa.MpuMv("m1", "m0", 0, 16, 8, dtype="int8",
                       scale_addr=64, bias_addr=128)
        assert qb.mem_bytes(2) == 16 * 8 * 1 + 2 * 8 * 2
        assert q.aux_elems() == 8 and qb.aux_elems() == 16

    def test_rejects_unknown_dtype(self):
        with pytest.raises(Exception):
            isa.DmaLoad("m0", 0, (4, 8), dtype="int4")

    def test_modeled_decode_speedup(self):
        # The acceptance bar: the bandwidth-bound m=1 gen step must be
        # >= 1.8x faster at int8 (weights are ~all the streamed bytes).
        fp16 = SimulatedStepTimer(OPT_13B).decode_step_s(1, 576)
        int8 = SimulatedStepTimer(OPT_13B, quantize="int8"
                                  ).decode_step_s(1, 576)
        assert fp16 / int8 >= 1.8

    def test_traffic_helpers(self):
        assert weight_stream_bytes(1000, 2) == 2000.0
        assert weight_stream_bytes(1000, 1) == 1000.0
        with pytest.raises(ValueError):
            weight_stream_bytes(1000, 0)
        assert daily_weight_traffic_bytes(10.0, 1000) == 20_000.0
        assert daily_weight_traffic_bytes(10.0, 1000, elem_bytes=1) \
            == 10_000.0
        with pytest.raises(ConfigurationError):
            daily_weight_traffic_bytes(-1.0, 1000)


class TestAnalysis:
    def test_scale_and_bias_windows_checked(self):
        q = isa.MpuMv("m1", "m0", 0, 16, 8, dtype="int8",
                      scale_addr=1024, bias_addr=2048)
        windows = memory_windows(q)
        assert (1024, 8 * 4, "load") in windows
        assert (2048, 8 * 4, "load") in windows
        # Defaults must not leak a bogus negative window.
        plain = isa.MpuMv("m1", "m0", 0, 16, 8)
        assert all(addr >= 0 for addr, _n, _k in memory_windows(plain))

    def test_int8_dst_charged_at_int32_width(self):
        program = [isa.DmaLoad("m0", 0, (1, 16)),
                   isa.MpuMv("m1", "m0", 0, 16, 8, dtype="int8",
                             scale_addr=1024),
                   isa.Free(("m0", "m1"))]
        fp16_dst = isa.MpuMv("m1", "m0", 0, 16, 8)
        peak_q = register_pressure(program).peak_bytes["m"]
        peak_f = register_pressure(
            [program[0], fp16_dst, program[2]]).peak_bytes["m"]
        # Same shapes; the int8 accumulator doubles the dst bytes.
        assert peak_q == peak_f + 8 * 2

    def test_pnm301_scaleless_int8_matmul(self):
        program = [isa.DmaLoad("m0", 0, (1, 16)),
                   isa.MpuMv("m1", "m0", 0, 16, 8, dtype="int8"),
                   isa.Free(("m0", "m1"))]
        isa.validate_program(program)  # structurally legal on purpose
        codes = [d.code for d in dtype_diagnostics(program)]
        assert codes == ["PNM301"]
        report = verify_program(program)
        assert not report.ok
        assert {d.code for d in report.errors} == {"PNM301"}

    def test_pnm302_mixed_dtype_program(self):
        program = [isa.DmaLoad("m0", 0, (1, 16)),
                   isa.MpuMv("m1", "m0", 0, 16, 8, dtype="int8",
                             scale_addr=1024),
                   isa.MpuMv("m2", "m1", 4096, 8, 8),
                   isa.Free(("m0", "m1", "m2"))]
        isa.validate_program(program)
        codes = [d.code for d in dtype_diagnostics(program)]
        assert codes == ["PNM302"]

    def test_int8_timing_programs_verify_clean(self):
        layout = timing_layout(CFG, quantize="int8")
        report = verify_program(
            timing_program(CFG, 1, 16, quantize="int8"), layout=layout)
        assert report.ok and report.clean
        batched = verify_program(
            batched_timing_program(CFG, 4, 16, quantize="int8"),
            layout=layout)
        assert batched.ok
        assert {d.code for d in batched.diagnostics} \
            == {"PNM104", "PNM204"}
