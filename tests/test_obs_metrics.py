"""Metrics registry: counters, gauges, fixed-bucket histograms."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs import Histogram, MetricsRegistry
from repro.obs.metrics import (
    NULL_REGISTRY,
    NULL_INSTRUMENT,
    default_time_buckets,
)


class TestCounter:
    def test_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("bytes").inc(10)
        registry.counter("bytes").inc(5)
        assert registry.counter("bytes").value == 15

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("served", source="HOST").inc(1)
        registry.counter("served", source="PNM").inc(2)
        assert registry.counter("served", source="HOST").value == 1
        assert registry.counter("served", source="PNM").value == 2

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("c", a=1, b=2).inc()
        assert registry.counter("c", b=2, a=1).value == 1

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("c").inc(-1)


class TestGauge:
    def test_envelope(self):
        gauge = MetricsRegistry().gauge("depth")
        for value in (3, 1, 7, 2):
            gauge.set(value)
        assert gauge.value == 2
        assert gauge.min == 1
        assert gauge.max == 7
        assert gauge.updates == 4

    def test_unset_dict_is_zeros(self):
        assert MetricsRegistry().gauge("g").as_dict() == {
            "value": 0.0, "min": 0.0, "max": 0.0, "updates": 0}


class TestHistogram:
    def test_count_sum_min_max_exact(self):
        hist = Histogram(buckets=[1.0, 2.0, 4.0])
        for value in (0.5, 1.5, 3.0, 9.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == 14.0
        assert hist.min == 0.5
        assert hist.max == 9.0
        assert hist.overflow == 1
        assert hist.mean == 3.5

    def test_percentiles_against_numpy_reference(self):
        rng = np.random.default_rng(7)
        samples = rng.uniform(0.0, 0.1, size=5000)
        width = 0.001
        hist = Histogram(buckets=np.arange(width, 0.12, width))
        for value in samples:
            hist.observe(value)
        for p in (50, 95, 99):
            reference = np.percentile(samples, p)
            estimate = hist.percentile(p)
            # Linear interpolation inside a fixed bucket is exact to
            # within one bucket width of the sample percentile.
            assert abs(estimate - reference) <= 2 * width, p

    def test_percentiles_with_default_log_buckets(self):
        rng = np.random.default_rng(0)
        samples = rng.exponential(1e-3, size=4000)
        hist = Histogram()  # default log-spaced time buckets
        for value in samples:
            hist.observe(value)
        buckets = default_time_buckets()
        ratio = buckets[1] / buckets[0]
        for p in (50, 95, 99):
            reference = np.percentile(samples, p)
            estimate = hist.percentile(p)
            assert reference / ratio <= estimate <= reference * ratio, p

    def test_percentile_clamps_to_observed_range(self):
        hist = Histogram(buckets=[10.0])
        hist.observe(2.0)
        hist.observe(3.0)
        assert 2.0 <= hist.percentile(50) <= 3.0
        assert hist.percentile(0) >= 2.0
        assert hist.percentile(100) <= 3.0

    def test_overflow_percentile_is_observed_max(self):
        hist = Histogram(buckets=[1.0])
        for value in (5.0, 6.0, 7.0):
            hist.observe(value)
        assert hist.percentile(99) == 7.0

    def test_empty_histogram(self):
        hist = Histogram(buckets=[1.0])
        assert hist.percentile(50) == 0.0
        assert hist.as_dict()["count"] == 0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            Histogram(buckets=[])
        with pytest.raises(ConfigurationError):
            Histogram(buckets=[2.0, 1.0])
        with pytest.raises(ConfigurationError):
            Histogram(buckets=[1.0]).percentile(101)


class TestRegistry:
    def test_as_dict_layout(self):
        registry = MetricsRegistry()
        registry.counter("c", source="HOST").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.25)
        dump = registry.as_dict()
        assert dump["counters"]["c{source=HOST}"] == {"value": 3.0}
        assert dump["gauges"]["g"]["value"] == 1.5
        assert dump["histograms"]["h"]["count"] == 1
        assert dump["histograms"]["h"]["p50"] == pytest.approx(
            0.25, rel=1.0)

    def test_histogram_buckets_fixed_at_creation(self):
        registry = MetricsRegistry()
        first = registry.histogram("h", buckets=[1.0, 2.0])
        again = registry.histogram("h", buckets=[9.0])
        assert again is first
        assert first.buckets == (1.0, 2.0)

    def test_names(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.gauge("a").set(0)
        assert registry.names() == ["a", "b"]


class TestNullRegistry:
    def test_shared_inert_instruments(self):
        assert NULL_REGISTRY.counter("x") is NULL_INSTRUMENT
        assert NULL_REGISTRY.gauge("x") is NULL_INSTRUMENT
        assert NULL_REGISTRY.histogram("x") is NULL_INSTRUMENT
        NULL_INSTRUMENT.inc(5)
        NULL_INSTRUMENT.set(5)
        NULL_INSTRUMENT.observe(5)
        assert NULL_REGISTRY.as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}}
        assert not NULL_REGISTRY.enabled


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
