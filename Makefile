# Developer entry points.  Everything assumes only numpy + pytest are
# installed; `make lint` additionally runs ruff when it is available
# (CI installs it; the rule degrades gracefully without it).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint docs verify-programs all

all: lint test docs

test:
	$(PYTHON) -m pytest -x -q

# Static analysis: the source-tree lint suite (purity + units +
# determinism + contracts, honoring tools/static_analysis_baseline.json;
# always), the ISA program-verifier smoke over the service decode
# geometry (always), and ruff's pyflakes-error rules (when installed).
lint:
	$(PYTHON) tools/static_checks.py
	$(PYTHON) -m repro lint-program OPT-13B --batch-tokens 1
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests tools benchmarks examples; \
	else \
		echo "ruff not installed; skipped ruff check"; \
	fi

docs:
	$(PYTHON) tools/check_docs.py

# Deeper program verification than the lint smoke: every geometry the
# test sweep exercises, plus the batched decode step in JSON form.
verify-programs:
	$(PYTHON) -m repro lint-program OPT-13B --batch-tokens 1
	$(PYTHON) -m repro lint-program OPT-13B --batch-tokens 64 --ctx-prev 0
	$(PYTHON) -m repro lint-program tiny --batched 4 --errors-only
