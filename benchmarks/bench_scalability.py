"""§IX bench: 1.25 TB hypothetical model on both platforms."""

from repro.experiments import run_experiment


def test_scalability(benchmark, record_experiment):
    result = benchmark(run_experiment, "scalability")
    record_experiment(result)
    rows = {r["platform"]: r for r in result.rows}
    saving = [r for r in result.rows if "saving" in r["platform"]][0]
    benchmark.extra_info["pnm_devices"] = rows["CXL-PNM"]["devices"]
    benchmark.extra_info["cost_saving"] = round(saving["hardware_usd"], 3)
    assert rows["CXL-PNM"]["devices"] == 3
    assert 0.8 < saving["hardware_usd"] < 0.95  # paper: 87%
