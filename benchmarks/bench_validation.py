"""§VII bench: simulator vs analytical model agreement."""

from repro.experiments import run_experiment


def test_validation(benchmark, record_experiment):
    result = benchmark(run_experiment, "validation")
    record_experiment(result)
    worst = [r for r in result.rows if r["model"] == "worst case"][0]
    benchmark.extra_info["worst_rel_error"] = round(worst["rel_error"], 4)
    assert worst["rel_error"] < 0.05
