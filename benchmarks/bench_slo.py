#!/usr/bin/env python
"""Multi-tenant SLO front-end bench: fair share, preemption, shedding.

One pytest-benchmark case times the continuous-batching engine with the
full serving front end engaged — Zipf-skewed tenants in two classes,
flash-crowd arrivals, weighted fair queuing, priority preemption, and
SLO admission — against the same stream with the front end off, so the
overhead of the multi-tenant path is visible in the compare table.

Run as a script, this benchmarks the front end **at cluster scale** —
a sampled-lognormal multi-tenant stream across ``--devices`` replicas —
and writes a JSON record next to the other benchmark results:

    PYTHONPATH=src python benchmarks/bench_slo.py \
        --requests 20000 --devices 8

The record keeps both the wall-clock cost (``wall_s``) and the service
outcome (per-class goodput under SLO and attainment).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.accelerator import CXLPNMDevice
from repro.appliance import (
    ContinuousBatchScheduler,
    TenantClass,
    timer_service,
)
from repro.llm import OPT_13B, InferenceRequest
from repro.llm.workload import arrivals_for_shape, multi_tenant_workload
from repro.perf.analytical import BatchStepTimer, PnmPerfModel

RESULTS = Path(__file__).resolve().parent / "results" / "BENCH_slo.json"

_DEVICE = CXLPNMDevice()
_PERF = PnmPerfModel(_DEVICE)
CLASS_NAMES = ("interactive", "batch")
SEED = 11


def _classes(step: BatchStepTimer) -> tuple:
    """Interactive outranks batch; targets scale with the step costs."""
    prefill = step.prefill_s(64)
    decode = step.decode_step_s(1, 65)
    return (TenantClass("interactive", weight=3.0, priority=1,
                        ttft_target_s=4.0 * prefill,
                        tbt_target_s=8.0 * decode),
            TenantClass("batch", weight=1.0))


def _stream(num_requests: int, devices: int, seed: int = SEED):
    requests = multi_tenant_workload(
        num_requests, num_tenants=8, class_names=CLASS_NAMES, seed=seed,
        mean_input=64, mean_output=64, max_total=OPT_13B.max_seq_len)
    rate = 3.0 * devices / timer_service(OPT_13B, _PERF)(
        InferenceRequest(64, 64))
    arrivals = arrivals_for_shape("flash-crowd", num_requests, rate,
                                  seed=seed)
    return requests, arrivals


def _engine(devices: int, multi_tenant: bool) -> ContinuousBatchScheduler:
    step = BatchStepTimer(OPT_13B, _PERF)
    return ContinuousBatchScheduler(
        step, OPT_13B, _DEVICE.memory_capacity, num_devices=devices,
        classes=_classes(step) if multi_tenant else None,
        slo_admission=multi_tenant)


def test_serve_single_class_baseline(benchmark):
    requests, arrivals = _stream(64, devices=2)
    stats = benchmark(lambda: _engine(2, False).run(requests, arrivals))
    benchmark.extra_info["throughput_tok_s"] = round(
        stats.throughput_tokens_per_s, 1)
    assert not stats.rejected


def test_serve_multi_tenant_slo(benchmark):
    requests, arrivals = _stream(64, devices=2)
    stats = benchmark(lambda: _engine(2, True).run(requests, arrivals))
    cells = stats.class_breakdown()
    benchmark.extra_info["goodput_tok_s"] = round(
        stats.goodput_tokens_per_s, 1)
    benchmark.extra_info["slo_attainment"] = round(stats.slo_attainment, 3)
    benchmark.extra_info["interactive_attainment"] = round(
        cells["interactive"]["slo_attainment"], 3)
    # Both classes must actually be exercised by the Zipf tenant split.
    assert set(cells) == set(CLASS_NAMES)
    assert stats.goodput_tokens_per_s > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=20_000,
                        help="stream length (default 20000)")
    parser.add_argument("--devices", type=int, default=8,
                        help="model replicas (default 8)")
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--out", type=Path, default=RESULTS,
                        help=f"JSON output path (default {RESULTS})")
    parser.add_argument("--max-wall-s", type=float, default=None,
                        help="fail if the scale run exceeds this")
    args = parser.parse_args(argv)

    requests, arrivals = _stream(args.requests, args.devices,
                                 seed=args.seed)
    engine = _engine(args.devices, True)
    start = time.perf_counter()
    stats = engine.run(requests, arrivals)
    wall_s = time.perf_counter() - start

    print(f"slo front end: {args.requests} requests x {args.devices} "
          f"devices in {wall_s:.1f} s wall "
          f"({args.requests / wall_s:.0f} req/s simulated, "
          f"{stats.preemptions} preemptions, "
          f"{len(stats.rejected)} rejected, "
          f"goodput {stats.goodput_tokens_per_s:.0f} sim tok/s, "
          f"attainment {stats.slo_attainment:.3f})")

    record = {
        "benchmark": "slo_front_end_serving",
        "model": OPT_13B.name,
        "requests": args.requests,
        "devices": args.devices,
        "arrival_shape": "flash-crowd",
        "tenant_classes": list(CLASS_NAMES),
        "wall_s": wall_s,
        "requests_per_wall_s": args.requests / wall_s,
        "completed": len(stats.completed),
        "rejected": len(stats.rejected),
        "preemptions": stats.preemptions,
        "sim_makespan_s": stats.makespan_s,
        "sim_throughput_tok_s": stats.throughput_tokens_per_s,
        "sim_goodput_tok_s": stats.goodput_tokens_per_s,
        "slo_attainment": stats.slo_attainment,
        "class_breakdown": stats.class_breakdown(),
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.max_wall_s is not None and wall_s > args.max_wall_s:
        print(f"FAIL: wall {wall_s:.1f} s above required "
              f"{args.max_wall_s:.1f} s")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
