"""Service-level bench: request scheduling over both appliances.

Not a paper figure — an operations view of Fig. 11's appliances: the same
open-loop Poisson workload offered to the 8-instance CXL-PNM appliance
(DP=8) and the single-instance GPU appliance (TP=8), reporting latency
percentiles and sustained throughput.
"""

from repro.accelerator import CXLPNMDevice
from repro.appliance.scheduler import (
    RequestScheduler,
    poisson_arrivals,
    timer_service,
)
from repro.gpu import A100_40G
from repro.llm import OPT_66B, sampled_workload
from repro.perf.analytical import GpuPerfModel, PnmPerfModel

REQUESTS = sampled_workload(24, seed=11, mean_output=128, max_total=1024)
ARRIVALS = poisson_arrivals(len(REQUESTS), rate_per_s=0.2, seed=3)


def _run_service(service, instances):
    scheduler = RequestScheduler(service, num_instances=instances)
    return scheduler.run(REQUESTS, ARRIVALS)


def test_service_pnm_dp8(benchmark):
    service = timer_service(OPT_66B, PnmPerfModel(CXLPNMDevice()))
    stats = benchmark(_run_service, service, 8)
    benchmark.extra_info["p95_latency_s"] = round(stats.p95_latency_s, 1)
    benchmark.extra_info["throughput_tok_s"] = round(
        stats.throughput_tokens_per_s, 1)
    assert stats.throughput_tokens_per_s > 0


def test_service_gpu_tp8(benchmark):
    service = timer_service(OPT_66B, GpuPerfModel(A100_40G),
                            tensor_parallel=8)
    stats = benchmark(_run_service, service, 1)
    benchmark.extra_info["p95_latency_s"] = round(stats.p95_latency_s, 1)
    benchmark.extra_info["throughput_tok_s"] = round(
        stats.throughput_tokens_per_s, 1)
    assert stats.throughput_tokens_per_s > 0
