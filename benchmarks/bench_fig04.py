"""Fig. 4 bench: GPU utilization and time breakdown for OPT-6.7B."""

from repro.experiments import run_experiment


def test_fig4_gpu_utilization(benchmark, record_experiment):
    result = benchmark(run_experiment, "fig4")
    record_experiment(result)
    rows = {r["metric"]: r["value"] for r in result.rows}
    benchmark.extra_info["gen_utilization"] = round(
        rows["gen-stage GPU utilization"], 3)
    benchmark.extra_info["gemv_time_share"] = round(
        rows["GEMV share of execution time"], 3)
    assert rows["gen-stage GPU utilization"] < 0.25
    assert rows["GEMV share of execution time"] > 0.75
