"""Fig. 10 bench: single GPU vs single CXL-PNM device on OPT-13B."""

from repro.experiments import run_experiment


def test_fig10_single_device(benchmark, record_experiment):
    result = benchmark(run_experiment, "fig10")
    record_experiment(result)
    row = [r for r in result.rows if r["output_tokens"] == 1024][0]
    benchmark.extra_info["throughput_delta@1024"] = round(
        row["throughput_delta"], 3)
    benchmark.extra_info["energy_eff_ratio@1024"] = round(
        row["energy_eff_ratio"], 2)
    benchmark.extra_info["gpu_power_w"] = round(row["gpu_power_w"], 1)
    benchmark.extra_info["pnm_power_w"] = round(row["pnm_power_w"], 1)
    # Paper: -10.8% throughput, 2.9x energy efficiency.
    assert -0.2 < row["throughput_delta"] < 0.0
    assert 2.3 < row["energy_eff_ratio"] < 3.5
