"""§V-A bench: the four PIM/PNM disadvantages, quantified."""

from repro.experiments import run_experiment


def test_disadvantages(benchmark, record_experiment):
    result = benchmark(run_experiment, "disadvantages")
    record_experiment(result)
    rows = {r["disadvantage"]: r for r in result.rows}
    benchmark.extra_info["d2_bandwidth_advantage"] = round(
        rows["D2 PNM bandwidth (GB/s)"]["advantage"], 1)
    benchmark.extra_info["d4_visible_fraction_dimm"] = \
        rows["D4 accessible fraction of a 1 GiB region"]["dimm_or_pim"]
    assert rows["D2 PNM bandwidth (GB/s)"]["advantage"] >= 10.0
