"""Table II bench: CXL-PNM platform parameters."""

from repro.experiments import run_experiment


def test_table2_platform(benchmark, record_experiment):
    result = benchmark(run_experiment, "table2")
    record_experiment(result)
    rows = {r["parameter"]: r["value"] for r in result.rows}
    benchmark.extra_info["peak_tflops"] = rows["peak_pe_tflops"]
    assert rows["num_pes"] == 2048
    assert abs(rows["peak_pe_tflops"] - 4.096) < 0.01
