"""Table III bench: hardware and operating cost comparison."""

from repro.experiments import run_experiment


def test_table3_tco(benchmark, record_experiment):
    result = benchmark(run_experiment, "table3")
    record_experiment(result)
    gpu = [r for r in result.rows if "GPU" in r["appliance"]][0]
    pnm = [r for r in result.rows
           if r["appliance"].startswith("CXL-PNM")][0]
    benchmark.extra_info["gpu_kwh_per_day"] = round(gpu["kwh_per_day"], 1)
    benchmark.extra_info["pnm_kwh_per_day"] = round(pnm["kwh_per_day"], 1)
    benchmark.extra_info["pnm_Mtokens_per_usd"] = round(
        pnm["Mtokens_per_usd"], 2)
    # Paper: 43.2 vs 15.4 kWh/day; 0.83 vs 3.54 M tokens/$.
    assert gpu["kwh_per_day"] > 2 * pnm["kwh_per_day"]
    assert pnm["Mtokens_per_usd"] > 3 * gpu["Mtokens_per_usd"]
