"""Fig. 2 bench: required capacity/bandwidth per GPT size at 200 ms/token."""

from repro.experiments import run_experiment


def test_fig2_capacity_bandwidth(benchmark, record_experiment):
    result = benchmark(run_experiment, "fig2")
    record_experiment(result)
    gpt35 = [r for r in result.rows if "175B" in r["model"]][0]
    benchmark.extra_info["gpt35_capacity_GiB"] = round(
        gpt35["capacity_GiB"], 1)
    benchmark.extra_info["gpt35_required_bw_TB_s"] = round(
        gpt35["required_bw_TB_s"], 3)
    assert gpt35["required_bw_TB_s"] > 1.55
