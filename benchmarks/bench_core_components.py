"""Microbenchmarks of the core engines themselves.

These time the reproduction's own machinery (not the modelled hardware):
the functional executor generating tokens, the compiler emitting
acceleration code for a big model, and the timing simulator scheduling a
full OPT-13B gen stage.  Useful to keep the library usable as it grows.
"""

from repro.accelerator import CXLPNMDevice, timing_program
from repro.accelerator.compiler import timing_program as compile_timing
from repro.llm import OPT_13B, random_weights, tiny_config
from repro.perf.simulator import AcceleratorSimulator
from repro.runtime import InferenceSession


def test_functional_generation_speed(benchmark):
    session = InferenceSession(random_weights(tiny_config(), seed=0),
                               simulate_timing=False)
    result = benchmark(session.generate, [1, 2, 3], 4)
    assert len(result.tokens) == 4


def test_compiler_speed_opt13b(benchmark):
    program = benchmark(compile_timing, OPT_13B, 1, 575)
    assert len(program) > 500


def test_simulator_speed_opt13b_gen_stage(benchmark):
    simulator = AcceleratorSimulator(CXLPNMDevice())
    program = timing_program(OPT_13B, batch_tokens=1, ctx_prev=575)
    result = benchmark(simulator.run, program)
    assert result.total_time_s > 0
