#!/usr/bin/env python
"""Decode-loop hot-path benchmark: cached vs uncached token loop.

Times a greedy decode of ``--tokens`` tokens through the full
compile -> program -> execute -> simulate path twice:

* **uncached** (``fast_path=False``): every stage recompiles, every
  consumer re-validates, executor kernels loop per head, the timing
  simulator re-derives every duration — the seed behaviour;
* **cached** (``fast_path=True``): stage-program cache with patching,
  validate-once, vectorized kernels, weight-read cache, memoized
  durations, and whole-program timing reuse.

Each path runs ``--runs`` times on one session (so caches reach steady
state, as in a serving loop) and the best wall time wins.  The script
asserts the two paths are *bit-identical* — same tokens, same simulated
stage times — then writes a JSON record next to the other benchmark
results.  Run from the repo root:

    PYTHONPATH=src python benchmarks/bench_hotpath.py

Read ``speedup`` from the JSON (or stdout): wall seconds of the uncached
loop divided by the cached loop, for the same generated text.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.llm.config import LLMConfig
from repro.llm.reference import random_weights
from repro.runtime.session import InferenceSession

RESULTS = Path(__file__).resolve().parent / "results" / \
    "BENCH_hotpath.json"

CONFIG = LLMConfig(name="bench-tiny", d_model=256, num_heads=16,
                   d_ff=1024, num_layers=4, vocab_size=2048,
                   max_seq_len=256)
PROMPT = (11, 29, 3, 101, 7, 45)
SEED = 0


def build_session(fast_path: bool) -> InferenceSession:
    weights = random_weights(CONFIG, seed=SEED)
    return InferenceSession(weights, fast_path=fast_path)


def time_decode(session: InferenceSession, tokens: int, runs: int):
    """Best wall time over ``runs`` decodes; returns (seconds, trace)."""
    best = float("inf")
    trace = None
    for _ in range(runs):
        session.reset()
        start = time.perf_counter()
        trace = session.generate(PROMPT, tokens)
        best = min(best, time.perf_counter() - start)
    return best, trace


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tokens", type=int, default=100,
                        help="decode length (default 100)")
    parser.add_argument("--runs", type=int, default=3,
                        help="runs per path, best-of (default 3)")
    parser.add_argument("--out", type=Path, default=RESULTS,
                        help=f"JSON output path (default {RESULTS})")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail below this cached-vs-uncached ratio")
    args = parser.parse_args(argv)

    slow_s, slow = time_decode(build_session(fast_path=False),
                               args.tokens, args.runs)
    fast_s, fast = time_decode(build_session(fast_path=True),
                               args.tokens, args.runs)

    if fast.tokens != slow.tokens:
        print("FAIL: cached and uncached paths generated different tokens")
        return 1
    if fast.stage_times_s != slow.stage_times_s:
        print("FAIL: cached and uncached simulated stage times differ")
        return 1

    speedup = slow_s / fast_s
    record = {
        "benchmark": "decode_loop_hotpath",
        "model": {"d_model": CONFIG.d_model, "num_heads": CONFIG.num_heads,
                  "d_ff": CONFIG.d_ff, "num_layers": CONFIG.num_layers,
                  "vocab_size": CONFIG.vocab_size},
        "prompt_tokens": len(PROMPT),
        "decode_tokens": args.tokens,
        "runs_per_path": args.runs,
        "uncached_s": slow_s,
        "cached_s": fast_s,
        "speedup": speedup,
        "outputs_identical": True,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(record, indent=2) + "\n")

    per_tok = fast_s / (args.tokens) * 1e3
    print(f"decode {args.tokens} tokens: uncached {slow_s:.3f} s, "
          f"cached {fast_s:.3f} s ({per_tok:.2f} ms/token) "
          f"-> {speedup:.2f}x, outputs identical")
    print(f"wrote {args.out}")
    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below required "
              f"{args.min_speedup:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
