"""Fig. 11 bench: 8-GPU vs 8-device CXL-PNM appliances on OPT-66B."""

from repro.experiments import run_experiment


def test_fig11_appliance(benchmark, record_experiment):
    result = benchmark(run_experiment, "fig11")
    record_experiment(result)
    rows = {r["config"]: r for r in result.rows}
    dp8 = rows["CXL-PNM DP=8 x MP=1"]
    mp8 = rows["CXL-PNM DP=1 x MP=8"]
    benchmark.extra_info["dp8_throughput_delta"] = round(
        dp8["throughput_delta"], 3)
    benchmark.extra_info["dp8_energy_ratio"] = round(
        dp8["energy_eff_ratio"], 2)
    benchmark.extra_info["mp8_latency_delta"] = round(
        mp8["latency_delta"], 3)
    # Paper: +53% / 4.4x (DP=8); -23% latency (MP=8).
    assert 0.4 < dp8["throughput_delta"] < 0.7
    assert mp8["latency_delta"] < -0.1
