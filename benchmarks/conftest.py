"""Benchmark infrastructure: run an experiment, record, and persist it.

Every benchmark regenerates one paper artifact through its harness in
``repro.experiments``, times it with pytest-benchmark, stores the headline
numbers in ``extra_info`` (visible in the benchmark table / JSON), and
writes the full rendered table to ``benchmarks/results/<id>.txt`` so a
benchmark run leaves the reproduced figures on disk.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_experiment(results_dir):
    """Persist an ExperimentResult and return its rendered text."""

    def _record(result):
        rendered = result.render()
        path = results_dir / f"{result.experiment_id}.txt"
        path.write_text(rendered + "\n")
        print()
        print(rendered)
        return rendered

    return _record
