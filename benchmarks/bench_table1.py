"""Table I bench: memory-module comparison across DRAM technologies."""

from repro.experiments import run_experiment


def test_table1_memory_modules(benchmark, record_experiment):
    result = benchmark(run_experiment, "table1")
    record_experiment(result)
    by_tech = {r["technology"]: r for r in result.rows}
    benchmark.extra_info["lpddr5x"] = (
        f'{by_tech["LPDDR5X"]["cap_per_module_GB"]:.0f} GB / '
        f'{by_tech["LPDDR5X"]["bw_per_module_GB_s"]:.0f} GB/s')
    assert by_tech["LPDDR5X"]["cap_per_module_GB"] == 512
    assert by_tech["GDDR6"]["bw_per_module_GB_s"] == 1536
