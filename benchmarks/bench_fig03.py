"""Fig. 3 bench: kernel vs memcpy time for offloaded OPT-30B."""

from repro.experiments import run_experiment


def test_fig3_memcpy_breakdown(benchmark, record_experiment):
    result = benchmark(run_experiment, "fig3")
    record_experiment(result)
    pageable = [r for r in result.rows if r["transfer"] == "pageable"]
    worst = max(r["memcpy_fraction"] for r in pageable)
    benchmark.extra_info["memcpy_fraction"] = round(worst, 3)
    assert worst > 0.95  # paper: ~99%
