"""Serving-engine bench: FCFS-exclusive vs continuous batching.

Not a paper figure — the serving-layer comparison behind the paper's
§VII batching discussion: the same overloaded open-loop OPT-13B stream
served by exclusive FCFS dispatch and by the iteration-level batching
engine on one CXL-PNM device.  The headline numbers (sustained
throughput, TTFT) land in ``extra_info``.
"""

from repro.accelerator import CXLPNMDevice
from repro.appliance import (
    ContinuousBatchScheduler,
    RequestScheduler,
    poisson_arrivals,
    timer_service,
)
from repro.llm import OPT_13B, InferenceRequest
from repro.perf.analytical import BatchStepTimer, PnmPerfModel

REQUESTS = [InferenceRequest(64, 64, request_id=i) for i in range(24)]
RATE_PER_S = 2.0  # ~4x one exclusive CXL-PNM instance's capacity
ARRIVALS = poisson_arrivals(len(REQUESTS), RATE_PER_S, seed=3)

_DEVICE = CXLPNMDevice()
_PERF = PnmPerfModel(_DEVICE)


def test_serve_fcfs_exclusive(benchmark):
    scheduler = RequestScheduler(
        timer_service(OPT_13B, _PERF), num_instances=1, config=OPT_13B,
        memory_bytes=_DEVICE.memory_capacity)
    stats = benchmark(scheduler.run, REQUESTS, ARRIVALS)
    benchmark.extra_info["throughput_tok_s"] = round(
        stats.throughput_tokens_per_s, 1)
    benchmark.extra_info["p95_latency_s"] = round(stats.p95_latency_s, 1)
    assert stats.throughput_tokens_per_s > 0


def test_serve_continuous_batching(benchmark):
    def _run():
        engine = ContinuousBatchScheduler(
            BatchStepTimer(OPT_13B, _PERF), OPT_13B,
            _DEVICE.memory_capacity)
        return engine.run(REQUESTS, ARRIVALS)

    stats = benchmark(_run)
    benchmark.extra_info["throughput_tok_s"] = round(
        stats.throughput_tokens_per_s, 1)
    benchmark.extra_info["mean_ttft_s"] = round(stats.mean_ttft_s, 3)
    benchmark.extra_info["max_occupancy"] = stats.max_occupancy
    # The point of the engine: strictly more sustained throughput than
    # FCFS-exclusive on the identical arrival process.
    fcfs = RequestScheduler(
        timer_service(OPT_13B, _PERF), num_instances=1,
        config=OPT_13B, memory_bytes=_DEVICE.memory_capacity
    ).run(REQUESTS, ARRIVALS)
    assert stats.throughput_tokens_per_s > fcfs.throughput_tokens_per_s
