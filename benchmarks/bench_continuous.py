#!/usr/bin/env python
"""Serving-engine bench: FCFS vs continuous, and event-kernel scale.

Two pytest-benchmark cases keep the original serving-layer comparison
behind the paper's §VII batching discussion: the same overloaded
open-loop OPT-13B stream served by exclusive FCFS dispatch and by the
iteration-level batching engine on one CXL-PNM device.  The headline
numbers (sustained throughput, TTFT) land in ``extra_info``.

Run as a script, this benchmarks the **event-driven kernel at cluster
scale** — a sampled-lognormal OPT-13B workload across ``--devices``
model replicas — and writes a JSON record next to the other benchmark
results:

    PYTHONPATH=src python benchmarks/bench_continuous.py \
        --requests 100000 --devices 8

The record's ``wall_s`` is the wall-clock cost of simulating the whole
stream (the acceptance bar: >=100k requests on >=8 devices in under two
minutes).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.accelerator import CXLPNMDevice
from repro.appliance import (
    ContinuousBatchScheduler,
    RequestScheduler,
    poisson_arrivals,
    timer_service,
)
from repro.llm import OPT_13B, InferenceRequest
from repro.llm.workload import sampled_workload
from repro.perf.analytical import BatchStepTimer, PnmPerfModel

RESULTS = Path(__file__).resolve().parent / "results" / \
    "BENCH_continuous.json"

REQUESTS = [InferenceRequest(64, 64, request_id=i) for i in range(24)]
RATE_PER_S = 2.0  # ~4x one exclusive CXL-PNM instance's capacity
ARRIVALS = poisson_arrivals(len(REQUESTS), RATE_PER_S, seed=3)

_DEVICE = CXLPNMDevice()
_PERF = PnmPerfModel(_DEVICE)


def test_serve_fcfs_exclusive(benchmark):
    scheduler = RequestScheduler(
        timer_service(OPT_13B, _PERF), num_instances=1, config=OPT_13B,
        memory_bytes=_DEVICE.memory_capacity)
    stats = benchmark(scheduler.run, REQUESTS, ARRIVALS)
    benchmark.extra_info["throughput_tok_s"] = round(
        stats.throughput_tokens_per_s, 1)
    benchmark.extra_info["p95_latency_s"] = round(stats.p95_latency_s, 1)
    assert stats.throughput_tokens_per_s > 0


def test_serve_continuous_batching(benchmark):
    def _run():
        engine = ContinuousBatchScheduler(
            BatchStepTimer(OPT_13B, _PERF), OPT_13B,
            _DEVICE.memory_capacity)
        return engine.run(REQUESTS, ARRIVALS)

    stats = benchmark(_run)
    benchmark.extra_info["throughput_tok_s"] = round(
        stats.throughput_tokens_per_s, 1)
    benchmark.extra_info["mean_ttft_s"] = round(stats.mean_ttft_s, 3)
    benchmark.extra_info["max_occupancy"] = stats.max_occupancy
    # The point of the engine: strictly more sustained throughput than
    # FCFS-exclusive on the identical arrival process.
    fcfs = RequestScheduler(
        timer_service(OPT_13B, _PERF), num_instances=1,
        config=OPT_13B, memory_bytes=_DEVICE.memory_capacity
    ).run(REQUESTS, ARRIVALS)
    assert stats.throughput_tokens_per_s > fcfs.throughput_tokens_per_s


def _serve(requests, arrivals, devices, max_batch):
    """One timed run; returns (wall_seconds, stats)."""
    scheduler = ContinuousBatchScheduler(
        BatchStepTimer(OPT_13B, _PERF), OPT_13B,
        _DEVICE.memory_capacity, max_batch=max_batch,
        num_devices=devices)
    start = time.perf_counter()
    stats = scheduler.run(requests, arrivals)
    return time.perf_counter() - start, stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=100_000,
                        help="stream length (default 100000)")
    parser.add_argument("--devices", type=int, default=8,
                        help="model replicas (default 8)")
    parser.add_argument("--max-batch", type=int, default=64,
                        help="per-device batch cap (default 64)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=Path, default=RESULTS,
                        help=f"JSON output path (default {RESULTS})")
    parser.add_argument("--max-wall-s", type=float, default=None,
                        help="fail if the scale run exceeds this")
    args = parser.parse_args(argv)

    requests = sampled_workload(args.requests, seed=args.seed,
                                max_total=OPT_13B.max_seq_len)
    # Saturating open-loop load: ~4x the whole cluster's
    # exclusive-dispatch capacity on the mean request shape.
    service = timer_service(OPT_13B, _PERF)
    rate = 4.0 * args.devices / service(InferenceRequest(64, 256))
    arrivals = poisson_arrivals(len(requests), rate, seed=args.seed)

    wall_s, stats = _serve(requests, arrivals, args.devices,
                           args.max_batch)
    tokens = sum(c.request.total_tokens for c in stats.completed)
    print(f"event kernel: {args.requests} requests x {args.devices} "
          f"devices in {wall_s:.1f} s wall "
          f"({args.requests / wall_s:.0f} req/s simulated, "
          f"{stats.num_iterations} decode iterations, "
          f"sim makespan {stats.makespan_s:.0f} s, "
          f"{stats.throughput_tokens_per_s:.0f} sim tok/s)")

    record = {
        "benchmark": "event_kernel_serving",
        "model": OPT_13B.name,
        "requests": args.requests,
        "devices": args.devices,
        "max_batch": args.max_batch,
        "arrival_rate_req_s": rate,
        "wall_s": wall_s,
        "requests_per_wall_s": args.requests / wall_s,
        "completed": len(stats.completed),
        "num_iterations": stats.num_iterations,
        "sim_makespan_s": stats.makespan_s,
        "sim_throughput_tok_s": stats.throughput_tokens_per_s,
        "sim_tokens": tokens,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.max_wall_s is not None and wall_s > args.max_wall_s:
        print(f"FAIL: wall {wall_s:.1f} s above required "
              f"{args.max_wall_s:.1f} s")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
