#!/usr/bin/env python
"""INT8 weight-path benchmark: modeled decode speedup + token agreement.

Two halves, one JSON record:

* **Modeled speedup** — the instruction-level step timer prices an
  OPT-13B decode step (``batched_timing_program``) compiled at fp16 and
  at int8.  At ``m = 1`` the gen stage is bandwidth-bound on the weight
  stream, so halving the weight bytes should roughly halve the step
  (the acceptance bar: >= 1.8x).  The batched point is recorded too:
  on the 64-row PE array small-batch GEMM is compute-bound, so int8
  buys nothing there — the same DFX-lineage trade-off the batching
  experiment shows.
* **Accuracy** — a small random-weight model generates a greedy fp32
  token chain; the int8 session is then driven teacher-forced down the
  *same* chain and its per-step top-1 predictions are compared (the
  acceptance bar: >= 95% agreement over >= 64 steps).

Run from the repo root:

    PYTHONPATH=src python benchmarks/bench_int8.py

The record lands in ``benchmarks/results/BENCH_int8.json``; CI gates on
``speedup`` and ``agreement``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.llm.config import OPT_13B, LLMConfig
from repro.llm.reference import random_weights
from repro.perf.calibration import weight_stream_bytes
from repro.perf.simulator import SimulatedStepTimer
from repro.runtime.session import InferenceSession

RESULTS = Path(__file__).resolve().parent / "results" / "BENCH_int8.json"

#: Paper operating point for the modeled half: one token into a
#: KV context of 512 + 64 tokens (Fig 10's summarization shape).
DECODE_CONTEXT = 576

#: Small model for the functional half — big enough that int8 rounding
#: could plausibly flip argmaxes, small enough to run in seconds.
ACC_CONFIG = LLMConfig(name="bench-int8", d_model=128, num_heads=8,
                       d_ff=512, num_layers=2, vocab_size=512,
                       max_seq_len=128)
PROMPT = (11, 29, 3, 101, 7, 45)
SEED = 0


def modeled_speedup(batch: int, context: int) -> dict:
    """Price one decode step at both dtypes on the simulated device."""
    fp16 = SimulatedStepTimer(OPT_13B).decode_step_s(batch, context)
    int8 = SimulatedStepTimer(OPT_13B, quantize="int8"
                              ).decode_step_s(batch, context)
    return {"batch": batch, "context": context,
            "fp16_step_s": fp16, "int8_step_s": int8,
            "speedup": fp16 / int8}


def token_agreement(num_tokens: int) -> dict:
    """Teacher-forced top-1 agreement of int8 against the fp32 chain."""
    weights = random_weights(ACC_CONFIG, seed=SEED)
    fp32 = InferenceSession(weights, simulate_timing=False)
    int8 = InferenceSession(weights, simulate_timing=False,
                            quantize="int8")
    ref = fp32.generate(PROMPT, num_tokens).tokens
    # Drive the int8 session down the fp32 chain: after the prompt its
    # first prediction answers the same prefix as ref[0]; each extend
    # feeds the *fp32* token so every step sees identical context.
    preds = [int8.generate(PROMPT, 1).tokens[0]]
    for token in ref[:-1]:
        preds.append(int8.extend([token], 1).tokens[0])
    matches = sum(p == r for p, r in zip(preds, ref))
    return {"tokens": num_tokens, "matches": matches,
            "agreement": matches / num_tokens}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tokens", type=int, default=96,
                        help="teacher-forced steps (default 96)")
    parser.add_argument("--out", type=Path, default=RESULTS,
                        help=f"JSON output path (default {RESULTS})")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail below this int8 decode speedup")
    parser.add_argument("--min-agreement", type=float, default=0.0,
                        help="fail below this top-1 agreement")
    args = parser.parse_args(argv)

    decode = modeled_speedup(batch=1, context=DECODE_CONTEXT)
    batched = modeled_speedup(batch=8, context=DECODE_CONTEXT)
    accuracy = token_agreement(args.tokens)

    record = {
        "benchmark": "int8_weight_path",
        "model": OPT_13B.name,
        "decode": decode,
        "batched_decode": batched,
        "speedup": decode["speedup"],
        "accuracy_model": ACC_CONFIG.name,
        "tokens": accuracy["tokens"],
        "matches": accuracy["matches"],
        "agreement": accuracy["agreement"],
        "weight_stream_bytes_fp16": weight_stream_bytes(
            OPT_13B.num_params, 2),
        "weight_stream_bytes_int8": weight_stream_bytes(
            OPT_13B.num_params, 1),
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(record, indent=2) + "\n")

    print(f"decode m=1 ctx={DECODE_CONTEXT}: "
          f"fp16 {decode['fp16_step_s'] * 1e3:.2f} ms, "
          f"int8 {decode['int8_step_s'] * 1e3:.2f} ms "
          f"-> {decode['speedup']:.2f}x "
          f"(batch=8: {batched['speedup']:.2f}x, PE-array bound)")
    print(f"agreement: {accuracy['matches']}/{accuracy['tokens']} "
          f"({accuracy['agreement']:.1%}) teacher-forced top-1")
    print(f"wrote {args.out}")
    if decode["speedup"] < args.min_speedup:
        print(f"FAIL: speedup {decode['speedup']:.2f}x below required "
              f"{args.min_speedup:.2f}x")
        return 1
    if accuracy["agreement"] < args.min_agreement:
        print(f"FAIL: agreement {accuracy['agreement']:.1%} below "
              f"required {args.min_agreement:.1%}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
