"""Ablation benches: one per design choice DESIGN.md calls out."""

from repro.experiments import ablations


def test_ablation_pe_array(benchmark, record_experiment):
    result = benchmark(ablations.pe_array_ablation)
    record_experiment(result)
    last = result.rows[-1]
    benchmark.extra_info["speedup_at_512_tokens"] = round(last["speedup"], 1)
    assert last["speedup"] > 5.0


def test_ablation_tile_dim(benchmark, record_experiment):
    result = benchmark(ablations.tile_dim_ablation)
    record_experiment(result)
    times = {r["tile_dim"]: r["matmul_compute_ms"] for r in result.rows}
    benchmark.extra_info["l64_over_l128"] = round(times[64] / times[128], 2)
    assert times[128] < times[64]


def test_ablation_redumax(benchmark, record_experiment):
    result = benchmark(ablations.redumax_ablation)
    record_experiment(result)
    big = result.rows[-1]
    benchmark.extra_info["cycles_saved_pct"] = round(
        big["cycles_saved_pct"], 1)
    assert big["cycles_saved_pct"] > 20


def test_ablation_batching(benchmark, record_experiment):
    result = benchmark(ablations.batching_ablation)
    record_experiment(result)
    b64 = [r for r in result.rows if r["batch"] == 64][0]
    benchmark.extra_info["pnm_tokens_per_s@64"] = round(
        b64["pnm_tokens_per_s"], 1)
    assert b64["pnm_tokens_per_s"] > 100


def test_ablation_quantization(benchmark, record_experiment):
    result = benchmark(ablations.quantization_ablation)
    record_experiment(result)
    speedup = [r for r in result.rows
               if r["dtype"] == "INT8 speedup"][0]["tokens_per_s"]
    benchmark.extra_info["int8_speedup"] = round(speedup, 2)
    assert 1.6 < speedup < 2.4


def test_ablation_moe(benchmark, record_experiment):
    result = benchmark(ablations.moe_ablation)
    record_experiment(result)
    biggest = result.rows[-1]
    benchmark.extra_info["capacity_amplification"] = round(
        biggest["capacity_amplification"], 1)
    assert biggest["fits_one_cxl_pnm"]


def test_ablation_dma_buffer(benchmark, record_experiment):
    result = benchmark(ablations.dma_buffer_ablation)
    record_experiment(result)
    one_mb = [r for r in result.rows if r["buffer_KiB"] == 1024][0]
    benchmark.extra_info["efficiency@1MiB"] = round(one_mb["efficiency"], 3)
    assert one_mb["efficiency"] > 0.9


def test_ablation_parallelism_strategy(benchmark, record_experiment):
    result = benchmark(ablations.parallelism_strategy_ablation)
    record_experiment(result)
    rows = {r["strategy"]: r for r in result.rows}
    benchmark.extra_info["tp8_latency_ms"] = round(
        rows["tensor parallel (TP=8)"]["token_latency_ms"], 1)
    assert rows["tensor parallel (TP=8)"]["token_latency_ms"] \
        < rows["pipeline parallel (PP=8)"]["token_latency_ms"]


def test_ablation_cxl_expansion(benchmark, record_experiment):
    result = benchmark(ablations.cxl_expansion_ablation)
    record_experiment(result)
    times = [r["gen_token_ms"] for r in result.rows]
    benchmark.extra_info["pnm_over_expander"] = round(times[1] / times[2], 1)
    assert times[2] < times[1] < times[0]
