"""TCO-sensitivity bench: sweep the Table III inputs."""

from repro.experiments import run_experiment


def test_sensitivity(benchmark, record_experiment):
    result = benchmark(run_experiment, "sensitivity")
    record_experiment(result)
    benchmark.extra_info["worst_case_pnm_advantage"] = \
        result.anchors["worst_case_pnm_advantage"]
    assert result.anchors["worst_case_pnm_advantage"] > 1.0
