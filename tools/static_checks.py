#!/usr/bin/env python
"""Simulation-purity lint runner (the CI ``static-analysis`` job).

Thin CLI over :mod:`repro.analysis.purity`: lints every Python file
under ``src/repro`` against the PUR3xx rules — no wall-clock in timing
code, no unseeded RNG, no shared-state mutation inside observability
guards, no float64 in the float32-only reference kernels.  See
``docs/ANALYSIS.md`` for the rule table.

Usage::

    PYTHONPATH=src python tools/static_checks.py [--root DIR] [--json]

Exit codes follow the repo convention: 0 clean, 2 when the lint found
diagnostics, 1 when the tool itself failed (bad root, import error).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

#: Exit code for "the lint found something" (vs 1 = tool crashed).
EXIT_DIAGNOSTICS = 2


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=None,
                        help="tree to lint (default: src/repro next to "
                             "this script's repo)")
    parser.add_argument("--json", action="store_true",
                        help="print the report as JSON")
    args = parser.parse_args(argv)

    root = args.root
    if root is None:
        root = Path(__file__).resolve().parents[1] / "src" / "repro"
    if not root.is_dir():
        print(f"error: no such directory: {root}", file=sys.stderr)
        return 1

    sys.path.insert(0, str(root.parent))
    try:
        from repro.analysis.purity import lint_tree
    except ImportError as exc:
        print(f"error: cannot import repro.analysis: {exc}",
              file=sys.stderr)
        return 1

    report = lint_tree(root)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return EXIT_DIAGNOSTICS if not report.clean else 0


if __name__ == "__main__":
    sys.exit(main())
