#!/usr/bin/env python
"""Source-tree static-analysis runner (the CI ``static-analysis`` job).

Thin CLI over :mod:`repro.analysis.suite`: runs the simulation-purity
lint (PUR3xx), the dimensional/unit lint (UNIT4xx), the determinism
lint (DET5xx), and the cross-model contract checker (CON6xx) over
every Python file under ``src/repro``, then applies the checked-in
suppression baseline (``tools/static_analysis_baseline.json``).  See
``docs/ANALYSIS.md`` for the rule tables and the baseline policy.

Usage::

    PYTHONPATH=src python tools/static_checks.py [--root DIR]
        [--select purity,units,determinism,contracts]
        [--baseline FILE | --no-baseline] [--json] [--errors-only]

The default baseline applies only when linting this repo's own
``src/repro`` (a foreign ``--root`` would render every entry stale);
pass ``--baseline`` explicitly to use one elsewhere.

Exit codes follow the repo convention: 0 clean, 2 when the suite found
diagnostics or a baseline entry went stale, 1 when the tool itself
failed (bad root, import error, malformed baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

#: Exit code for "the lint found something" (vs 1 = tool crashed).
EXIT_DIAGNOSTICS = 2

#: The checked-in suppression baseline next to this script.
DEFAULT_BASELINE = Path(__file__).resolve().parent \
    / "static_analysis_baseline.json"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=None,
                        help="tree to lint (default: src/repro next to "
                             "this script's repo)")
    parser.add_argument("--select", action="append", default=[],
                        metavar="PASSES",
                        help="comma-separated passes (purity, units, "
                             "determinism, contracts); default: all")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="suppression baseline JSON (default: "
                             f"{DEFAULT_BASELINE.name} when linting "
                             "this repo's src/repro)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--json", action="store_true",
                        help="print the report as JSON")
    parser.add_argument("--errors-only", action="store_true",
                        help="exit 2 only on errors (warnings pass)")
    args = parser.parse_args(argv)

    default_root = Path(__file__).resolve().parents[1] / "src" / "repro"
    root = args.root if args.root is not None else default_root
    if not root.is_dir():
        print(f"error: no such directory: {root}", file=sys.stderr)
        return 1

    sys.path.insert(0, str(default_root.parent))
    try:
        from repro.analysis.baseline import Baseline
        from repro.analysis.suite import render_result, run_suite
        from repro.errors import ConfigurationError
    except ImportError as exc:
        print(f"error: cannot import repro.analysis: {exc}",
              file=sys.stderr)
        return 1

    baseline = None
    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline \
            and Path(root).resolve() == default_root \
            and DEFAULT_BASELINE.is_file():
        baseline_path = DEFAULT_BASELINE
    try:
        if baseline_path is not None and not args.no_baseline:
            baseline = Baseline.load(baseline_path)
        passes = [name for chunk in args.select
                  for name in chunk.split(",") if name.strip()] or None
        result = run_suite(root, passes=passes, baseline=baseline)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(render_result(result))
    if args.errors_only:
        failed = not result.report.ok or bool(result.stale)
    else:
        failed = not result.ok
    return EXIT_DIAGNOSTICS if failed else 0


if __name__ == "__main__":
    sys.exit(main())
