#!/usr/bin/env python
"""Documentation consistency checker (run by the CI ``docs`` job).

Three invariants, all cheap and all load-bearing:

1. **Every module has a docstring.**  Each ``*.py`` file under
   ``src/repro/`` must open with a non-empty module docstring — the
   one-line summaries are what ``docs/API.md`` and new readers lean on.
2. **``docs/API.md`` ↔ source bijection.**  The set of backticked
   dotted module names in ``docs/API.md`` (tokens like
   ``repro.memory.ecc``) must equal the set of modules that actually
   exist.  A module missing from the doc is *undocumented*; a doc name
   with no module behind it is *stale*.
3. **Operator guides are registered and reachable.**  Every guide in
   :data:`GUIDES` must exist and be linked by filename from both
   ``README.md`` and ``docs/API.md``, so no guide can silently fall
   out of the entry points readers actually start from.  (Checked only
   when the root has a ``README.md`` — miniature fixture repos in the
   test suite do not.)

The doc-side convention that makes the bijection checkable: module
names appear in API.md as whole backticked lowercase dotted paths
(`` `repro.cxl.link` ``); classes and functions are written bare
(``CXLLink``) or with call parens, never as backticked dotted paths,
so they are invisible to the extractor.

Usage::

    python tools/check_docs.py [--root REPO_ROOT]

Exits 0 when both invariants hold, 1 with an itemized report when not.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Dict, List, Set

#: Whole-token backticked lowercase dotted path rooted at ``repro``.
#: ``[a-z_]`` (not ``[a-z]``) so ``repro.__main__`` counts as a module
#: segment; a capitalized segment (a class) fails the full match and is
#: therefore ignored, by design.
_MODULE_TOKEN = re.compile(r"`(repro(?:\.[a-z_][a-z0-9_]*)*)`")

API_DOC = Path("docs") / "API.md"
SRC_ROOT = Path("src") / "repro"
README = Path("README.md")

#: Operator guides that must exist and be linked from the entry docs.
GUIDES = (Path("docs") / "SERVING.md",)
#: Entry-point docs that must mention each guide by filename.
GUIDE_INDEXES = (README, API_DOC)


def source_modules(root: Path) -> Dict[str, Path]:
    """Map dotted module name -> file for every module under src/repro.

    ``__init__.py`` files map to their package's dotted name, so
    packages participate in the bijection like any other module.
    """
    modules: Dict[str, Path] = {}
    src = root / SRC_ROOT
    for path in sorted(src.rglob("*.py")):
        rel = path.relative_to(root / "src")
        dotted = ".".join(rel.with_suffix("").parts)
        if dotted.endswith(".__init__"):
            dotted = dotted[: -len(".__init__")]
        modules[dotted] = path
    return modules


def missing_docstrings(modules: Dict[str, Path]) -> List[str]:
    """Dotted names of modules whose file lacks a module docstring."""
    missing = []
    for dotted, path in modules.items():
        tree = ast.parse(path.read_text(encoding="utf-8"))
        doc = ast.get_docstring(tree)
        if not doc or not doc.strip():
            missing.append(dotted)
    return missing


def documented_modules(root: Path) -> Set[str]:
    """Backticked dotted module names mentioned anywhere in API.md."""
    text = (root / API_DOC).read_text(encoding="utf-8")
    return set(_MODULE_TOKEN.findall(text))


def guide_problems(root: Path) -> List[str]:
    """Missing or unlinked operator guides (empty = all registered).

    Skipped entirely when the root has no ``README.md``: the miniature
    repos the test suite lays out only model the API.md bijection.
    """
    if not (root / README).exists():
        return []
    problems: List[str] = []
    for guide in GUIDES:
        if not (root / guide).exists():
            problems.append(f"missing operator guide: {guide}")
            continue
        for index in GUIDE_INDEXES:
            index_path = root / index
            if not index_path.exists():
                continue  # its absence is reported elsewhere
            if guide.name not in index_path.read_text(encoding="utf-8"):
                problems.append(
                    f"guide {guide} not linked from {index}")
    return problems


def run_checks(root: Path) -> List[str]:
    """Return a list of human-readable problems (empty = all good)."""
    problems: List[str] = []
    modules = source_modules(root)
    if not modules:
        return [f"no modules found under {root / SRC_ROOT}"]

    for dotted in missing_docstrings(modules):
        problems.append(f"missing module docstring: {dotted} "
                        f"({modules[dotted].relative_to(root)})")
    problems.extend(guide_problems(root))

    if not (root / API_DOC).exists():
        problems.append(f"missing {API_DOC}")
        return problems

    documented = documented_modules(root)
    for dotted in sorted(set(modules) - documented):
        problems.append(f"module not documented in {API_DOC}: {dotted}")
    for dotted in sorted(documented - set(modules)):
        problems.append(f"stale name in {API_DOC} (no such module): "
                        f"{dotted}")
    return problems


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parents[1],
                        help="repository root (default: this file's repo)")
    args = parser.parse_args(argv)
    problems = run_checks(args.root)
    if problems:
        print(f"docs check FAILED ({len(problems)} problems):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    count = len(source_modules(args.root))
    print(f"docs check OK: {count} modules, all with docstrings, "
          f"API.md in sync, {len(GUIDES)} guides registered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
