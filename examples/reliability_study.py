"""RAS study (§IX): ECC correction, scrubbing, and reliability math.

Walks the paper's error-correcting-capability discussion with running
code: a SECDED-protected memory region absorbing injected bit flips, ECS
scrubbing stopping single upsets from pairing into uncorrectable errors,
the inline-ECC capacity tax, and the scrub-interval trade-off (repair
rate vs bandwidth spent scrubbing) for the 512 GB module.

Run:  python examples/reliability_study.py
"""

import numpy as np

from repro.accelerator import DeviceMemory
from repro.memory import InlineEccConfig, ReliableRegion, ScrubPolicy
from repro.units import GB, MiB


def fault_injection_demo() -> None:
    print("=== SECDED in action: inject, correct, scrub ===")
    region = ReliableRegion(DeviceMemory(4 * MiB), "protected",
                            data_words=256)
    payload = np.arange(256, dtype=np.uint64) * 0x1234_5678
    region.write_array(payload)
    affected = region.inject_faults(num_flips=12, seed=5)
    print(f"injected 12 single-bit upsets into words "
          f"{sorted(set(affected))[:6]}...")
    recovered = region.read_array(256)
    assert np.array_equal(recovered, payload)
    print(f"all 256 words read back correct "
          f"({region.corrected_total} corrections on the fly)")
    report = region.scrub()
    print(f"scrub pass: {report.words_scanned} words, "
          f"{report.corrected} rewritten, "
          f"{report.uncorrectable} uncorrectable")
    assert region.scrub().corrected == 0
    print("second scrub finds a clean array\n")


def capacity_tax_demo() -> None:
    print("=== inline-ECC capacity tax on the 512 GB module ===")
    cfg = InlineEccConfig(module_capacity_bytes=512 * GB)
    print(f"parity overhead: {cfg.parity_overhead_fraction:.1%} -> "
          f"{cfg.usable_capacity_bytes / GB:.0f} GB usable")
    half = InlineEccConfig(module_capacity_bytes=512 * GB,
                           covered_fraction=0.5)
    print(f"covering only the model region (50%): "
          f"{half.usable_capacity_bytes / GB:.0f} GB usable\n")


def scrub_interval_tradeoff() -> None:
    print("=== ECS interval trade-off (512 GB, 1e-12 errors/bit-hour) ===")
    print(f"{'interval h':>11} {'uncorr/hour':>13} {'scrub MB/s':>11}")
    for hours in (0.5, 1, 4, 12, 24, 72):
        policy = ScrubPolicy(bit_error_rate_per_bit_hour=1e-12,
                             scrub_interval_hours=hours)
        rate = policy.uncorrectable_rate_per_hour(512 * GB)
        bw = policy.scrub_bandwidth_bytes_per_s(512 * GB) / 1e6
        print(f"{hours:11.1f} {rate:13.3e} {bw:11.2f}")
    print("\nreading: daily scrubbing costs ~6 MB/s of the 1.1 TB/s "
          "module (negligible)\nwhile keeping expected uncorrectable "
          "errors far below one per device-decade.")


if __name__ == "__main__":
    fault_injection_demo()
    capacity_tax_demo()
    scrub_interval_tradeoff()
