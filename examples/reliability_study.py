"""RAS study (§IX): ECC correction, scrubbing, and fault injection.

Walks the paper's error-correcting-capability discussion with running
code: a SECDED-protected memory region absorbing injected bit flips, ECS
scrubbing stopping single upsets from pairing into uncorrectable errors,
the inline-ECC capacity tax, the scrub-interval trade-off (repair rate
vs bandwidth spent scrubbing) for the 512 GB module — and then the
whole-stack view: a declarative ``FaultPlan`` driven through link,
memory, runtime, and serving layers by ``repro.faults`` (the machinery
behind ``python -m repro chaos``; see docs/RELIABILITY.md).

Run:  python examples/reliability_study.py
"""

import numpy as np

from repro.accelerator import DeviceMemory
from repro.faults import FaultPlan, chaos
from repro.faults.chaos_harness import ChaosConfig, run_chaos
from repro.memory import InlineEccConfig, ReliableRegion, ScrubPolicy
from repro.units import GB, MiB


def fault_injection_demo() -> None:
    print("=== SECDED in action: inject, correct, scrub ===")
    region = ReliableRegion(DeviceMemory(4 * MiB), "protected",
                            data_words=256)
    payload = np.arange(256, dtype=np.uint64) * 0x1234_5678
    region.write_array(payload)
    affected = region.inject_faults(num_flips=12, seed=5)
    print(f"injected 12 single-bit upsets into words "
          f"{sorted(set(affected))[:6]}...")
    recovered = region.read_array(256)
    assert np.array_equal(recovered, payload)
    print(f"all 256 words read back correct "
          f"({region.corrected_total} corrections on the fly)")
    report = region.scrub()
    print(f"scrub pass: {report.words_scanned} words, "
          f"{report.corrected} rewritten, "
          f"{report.uncorrectable} uncorrectable")
    assert region.scrub().corrected == 0
    print("second scrub finds a clean array\n")


def capacity_tax_demo() -> None:
    print("=== inline-ECC capacity tax on the 512 GB module ===")
    cfg = InlineEccConfig(module_capacity_bytes=512 * GB)
    print(f"parity overhead: {cfg.parity_overhead_fraction:.1%} -> "
          f"{cfg.usable_capacity_bytes / GB:.0f} GB usable")
    half = InlineEccConfig(module_capacity_bytes=512 * GB,
                           covered_fraction=0.5)
    print(f"covering only the model region (50%): "
          f"{half.usable_capacity_bytes / GB:.0f} GB usable\n")


def scrub_interval_tradeoff() -> None:
    print("=== ECS interval trade-off (512 GB, 1e-12 errors/bit-hour) ===")
    print(f"{'interval h':>11} {'uncorr/hour':>13} {'scrub MB/s':>11}")
    for hours in (0.5, 1, 4, 12, 24, 72):
        policy = ScrubPolicy(bit_error_rate_per_bit_hour=1e-12,
                             scrub_interval_hours=hours)
        rate = policy.uncorrectable_rate_per_hour(512 * GB)
        bw = policy.scrub_bandwidth_bytes_per_s(512 * GB) / 1e6
        print(f"{hours:11.1f} {rate:13.3e} {bw:11.2f}")
    print("\nreading: daily scrubbing costs ~6 MB/s of the 1.1 TB/s "
          "module (negligible)\nwhile keeping expected uncorrectable "
          "errors far below one per device-decade.")


def whole_stack_chaos_demo() -> None:
    """Drive a FaultPlan through every layer at once (§IX end to end).

    The same plan/config pair always produces the same report — faults
    draw from seeded per-layer RNG substreams — so the numbers printed
    here are reproducible, and an *empty* plan is bit-identical to no
    plan at all (asserted below).
    """
    print("\n=== whole-stack chaos: one FaultPlan, every layer ===")
    plan = (FaultPlan(seed=5)
            .with_link_errors(crc_error_rate=5e-3)
            .with_memory_upsets(0.5, scrub_every_ticks=4)
            .with_launch_faults(transient_rate=0.05)
            .with_device_stall(at_s=3.0, duration_s=0.5, device=0)
            .with_device_failure(at_s=10.0, device=1))
    config = ChaosConfig(num_requests=6, readback_reads=64)
    report = run_chaos(plan, config)
    print(report.render())

    # Off means off: under an empty plan the hooks are inert and the
    # report matches a second empty-plan run bit for bit.
    baseline = run_chaos(FaultPlan(seed=5), config)
    again = run_chaos(FaultPlan(seed=5), config)
    assert baseline.as_dict() == again.as_dict()
    assert baseline.counters["link_crc_errors"] == 0
    print("\nempty plan: zero faults, bit-identical reports (asserted)")

    # The ambient form, for wrapping your own code: any stack calls
    # inside the context see the plan via repro.faults.get_faults().
    with chaos(plan.with_device_failure(at_s=1.0, device=0)) as state:
        pass  # e.g. sessions, schedulers, link transfers ...
    assert state.counters.link_flits == 0  # nothing ran, nothing drawn


if __name__ == "__main__":
    fault_injection_demo()
    capacity_tax_demo()
    scrub_interval_tradeoff()
    whole_stack_chaos_demo()
