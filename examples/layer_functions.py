"""Using the CXL-PNM Python library's layer-function APIs directly.

The paper's software stack (§VI) exposes accelerated layer functions —
LayerNorm, Conv1D, MaskedMM, Softmax, GELU — so existing Python programs
can offload individual layers without adopting a whole framework.  This
example builds one transformer attention block *by hand* from those APIs,
with every operation executed by the simulated accelerator through the
driver, and checks the result against numpy.

Run:  python examples/layer_functions.py
"""

import math

import numpy as np

from repro.accelerator import DeviceMemory
from repro.llm.reference import causal_mask, gelu, layernorm, softmax
from repro.runtime import CxlPnmDriver, CxlPnmLibrary
from repro.units import MiB


def attention_block_on_device(lib: CxlPnmLibrary, x, w_qkv, b_qkv, w_proj,
                              b_proj, gamma, beta, num_heads):
    """One pre-LN attention block built from library calls only."""
    m, d = x.shape
    hd = d // num_heads
    x_dev = lib.from_numpy(x, "x")
    h = lib.layernorm(x_dev, lib.from_numpy(gamma), lib.from_numpy(beta))
    qkv = lib.conv1d(h, lib.from_numpy(w_qkv), lib.from_numpy(b_qkv))
    qkv_np = lib.to_numpy(qkv)
    q, k, v = qkv_np[:, :d], qkv_np[:, d:2 * d], qkv_np[:, 2 * d:]

    # Per-head MaskedMM -> Softmax -> context, all on the accelerator.
    context = np.empty_like(q)
    for head in range(num_heads):
        sl = slice(head * hd, (head + 1) * hd)
        scores = lib.masked_mm(lib.from_numpy(q[:, sl]),
                               lib.from_numpy(k[:, sl]),
                               scale=1.0 / math.sqrt(hd), mask_offset=0)
        probs = lib.softmax(scores)
        ctx = lib.matmul(probs, lib.from_numpy(v[:, sl]))
        context[:, sl] = lib.to_numpy(ctx)

    out = lib.conv1d(lib.from_numpy(context), lib.from_numpy(w_proj),
                     lib.from_numpy(b_proj))
    return lib.to_numpy(lib.add(lib.from_numpy(x), out))


def reference_block(x, w_qkv, b_qkv, w_proj, b_proj, gamma, beta,
                    num_heads):
    m, d = x.shape
    hd = d // num_heads
    h = layernorm(x, gamma, beta)
    qkv = h @ w_qkv + b_qkv
    q, k, v = qkv[:, :d], qkv[:, d:2 * d], qkv[:, 2 * d:]
    context = np.empty_like(q)
    mask = causal_mask(m, m, 0)
    for head in range(num_heads):
        sl = slice(head * hd, (head + 1) * hd)
        scores = (q[:, sl] @ k[:, sl].T) * np.float32(1.0 / math.sqrt(hd))
        scores = np.where(mask, scores, np.float32(-1e9))
        context[:, sl] = softmax(scores) @ v[:, sl]
    return x + (context @ w_proj + b_proj)


def main() -> None:
    rng = np.random.default_rng(0)
    m, d, heads = 6, 32, 4
    x = rng.standard_normal((m, d)).astype(np.float32)
    w_qkv = (rng.standard_normal((d, 3 * d)) * 0.05).astype(np.float32)
    b_qkv = np.zeros(3 * d, dtype=np.float32)
    w_proj = (rng.standard_normal((d, d)) * 0.05).astype(np.float32)
    b_proj = np.zeros(d, dtype=np.float32)
    gamma = np.ones(d, dtype=np.float32)
    beta = np.zeros(d, dtype=np.float32)

    driver = CxlPnmDriver(DeviceMemory(64 * MiB))
    lib = CxlPnmLibrary(driver)

    device_out = attention_block_on_device(
        lib, x, w_qkv, b_qkv, w_proj, b_proj, gamma, beta, heads)
    expected = reference_block(x, w_qkv, b_qkv, w_proj, b_proj, gamma,
                               beta, heads)
    np.testing.assert_allclose(device_out, expected, rtol=1e-5, atol=1e-6)
    print(f"attention block on the accelerator matches numpy "
          f"(max |err| = {np.abs(device_out - expected).max():.2e})")
    print(f"accelerator launches: {driver.launches}, "
          f"interrupts delivered: {driver.interrupts.delivered}")

    # Bonus: the GELU and Conv2D layer functions.
    img = rng.standard_normal((3, 8, 8)).astype(np.float32)
    kernel = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
    conv = lib.conv2d(lib.from_numpy(img), lib.from_numpy(kernel),
                      fuse_gelu=True)
    print(f"MPU_CONV2D_GELU_PEA output shape: {conv.shape}")
    act = lib.gelu(lib.from_numpy(x))
    np.testing.assert_allclose(lib.to_numpy(act), gelu(x), rtol=1e-6)
    print("GELU layer API matches numpy")


if __name__ == "__main__":
    main()
