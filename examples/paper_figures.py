"""Regenerate every table and figure of the paper in one run.

Walks the experiment registry in paper order, prints each reproduced
artifact as a text table next to the paper's anchor values, and writes
everything to ``examples/paper_figures_output.txt``.

Run:  python examples/paper_figures.py [experiment-id ...]
"""

import pathlib
import sys

from repro.experiments import run_all, run_experiment
from repro.experiments.registry import EXPERIMENTS


def main(argv) -> None:
    if argv:
        results = [run_experiment(eid) for eid in argv]
    else:
        print(f"running all {len(EXPERIMENTS)} experiments "
              f"({', '.join(EXPERIMENTS)}) ...\n")
        results = run_all()
    rendered = "\n\n".join(result.render() for result in results)
    print(rendered)
    out = pathlib.Path(__file__).parent / "paper_figures_output.txt"
    out.write_text(rendered + "\n")
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main(sys.argv[1:])
