"""Why LPDDR5X: a what-if study across DRAM technologies (paper §IV).

Builds a maximal CXL module from each DRAM technology, asks which OPT
models even fit, and then models what a CXL-PNM accelerator attached to
each module would achieve on token generation — reproducing the paper's
argument that only LPDDR5X offers capacity *and* bandwidth at module
scale.  Also demonstrates the (D3) arbitration and (D4) interleaving
analyses from §V-A.

Run:  python examples/memory_technology_study.py
"""

from dataclasses import replace

from repro.accelerator import CXLPNMDevice
from repro.cxl import compare_policies
from repro.llm import MODEL_ZOO, OPT_13B, OPT_30B, OPT_66B
from repro.memory import (
    HOST_INTERLEAVE,
    TABLE1_ORDER,
    accelerator_visible_fraction,
    build_module,
)
from repro.perf.analytical import InferenceTimer, PnmPerfModel
from repro.units import GB, TB


def module_study() -> None:
    print("=== which OPT models fit each maximal CXL module? ===")
    targets = [OPT_13B, OPT_30B, OPT_66B]
    for tech in TABLE1_ORDER:
        module = build_module(tech)
        fits = [cfg.name for cfg in targets
                if cfg.param_bytes <= module.capacity_bytes]
        print(f"{tech:8} {module.capacity_bytes / GB:6.0f} GB, "
              f"{module.peak_bandwidth / TB:5.2f} TB/s -> fits: "
              f"{', '.join(fits) if fits else 'none of them'}")
    print()


def accelerator_study() -> None:
    print("=== OPT-13B gen-token latency per backing technology ===")
    for tech in TABLE1_ORDER:
        module = build_module(tech)
        if OPT_13B.param_bytes > module.capacity_bytes:
            print(f"{tech:8} model does not fit "
                  f"({module.capacity_bytes / GB:.0f} GB module)")
            continue
        device = replace(CXLPNMDevice(), module=module)
        timer = InferenceTimer(OPT_13B, PnmPerfModel(device))
        stage = timer.gen_stage(context_len=576)
        print(f"{tech:8} {stage.time_s * 1e3:7.1f} ms/token "
              f"({module.peak_bandwidth / TB:.2f} TB/s module)")
    print()


def arbitration_study() -> None:
    print("=== (D3) hardware arbiter vs DIMM-PNM blocking+polling ===")
    module = build_module("LPDDR5X")
    results = compare_policies(memory_bandwidth=module.peak_bandwidth,
                               host_rate=100e9 / 64, pnm_rate=400e9 / 64,
                               pnm_task_s=2e-3)
    for policy, stats in results.items():
        from repro.cxl import Source
        host_gb = stats.served_bytes[Source.HOST] / 1e9
        wait_us = stats.mean_wait_s[Source.HOST] * 1e6
        print(f"{policy:14} host served {host_gb:6.1f} GB/s-interval, "
              f"mean host wait {wait_us:8.2f} us, "
              f"host blocked {stats.host_blocked_s * 1e3:6.1f} ms/s")
    print()


def interleaving_study() -> None:
    print("=== (D4) fraction of a 1 GiB region a pinned accelerator sees ===")
    frac = accelerator_visible_fraction(HOST_INTERLEAVE, 0, 1 << 30, 0)
    print(f"DIMM-PNM behind 1 of {HOST_INTERLEAVE.num_channels} host "
          f"channels: {frac:.1%} of the region")
    print("CXL-PNM behind its own controller: 100.0% (interleaving is "
          "module-local)")


if __name__ == "__main__":
    module_study()
    accelerator_study()
    arbitration_study()
    interleaving_study()
