"""Service capacity planning: offered load vs latency on both appliances.

Sweeps the offered request rate of an OPT-66B service (Poisson arrivals
over a sampled token-length mix) against the Fig. 11 appliances — the
8-instance CXL-PNM appliance (DP=8) and the single-instance 8-GPU
appliance (TP=8) — and reports p50/p95 latency and sustained throughput
at each operating point.  The crossover the numbers show: the GPU
appliance is the lower-latency machine at light load; the CXL-PNM
appliance absorbs ~50% more offered load before its queue blows up.

Run:  python examples/service_capacity.py
"""

from repro.accelerator import CXLPNMDevice
from repro.appliance import RequestScheduler, poisson_arrivals, timer_service
from repro.gpu import A100_40G
from repro.llm import OPT_66B, sampled_workload
from repro.perf.analytical import GpuPerfModel, PnmPerfModel

NUM_REQUESTS = 40
RATES = (0.02, 0.05, 0.10, 0.20, 0.40)


def sweep(label, service, instances):
    print(f"--- {label} ({instances} instance(s)) ---")
    print(f"{'rate req/s':>11} {'p50 s':>8} {'p95 s':>8} "
          f"{'mean wait s':>12} {'tok/s':>8} {'util':>6}")
    requests = sampled_workload(NUM_REQUESTS, seed=42, mean_output=128,
                                max_total=1024)
    scheduler = RequestScheduler(service, num_instances=instances)
    for rate in RATES:
        arrivals = poisson_arrivals(NUM_REQUESTS, rate, seed=7)
        stats = scheduler.run(requests, arrivals)
        print(f"{rate:11.2f} {stats.p50_latency_s:8.1f} "
              f"{stats.p95_latency_s:8.1f} {stats.mean_queue_wait_s:12.1f} "
              f"{stats.throughput_tokens_per_s:8.1f} "
              f"{stats.instance_utilization:6.2f}")
    print()


def main() -> None:
    pnm_service = timer_service(OPT_66B, PnmPerfModel(CXLPNMDevice()))
    gpu_service = timer_service(OPT_66B, GpuPerfModel(A100_40G),
                                tensor_parallel=8)
    sweep("CXL-PNM appliance, DP=8", pnm_service, instances=8)
    sweep("GPU appliance, TP=8", gpu_service, instances=1)
    print("reading: at light load the TP=8 GPU appliance finishes each "
          "request sooner;\nas the offered rate approaches one appliance's "
          "service rate, queue wait explodes\nfirst on the machine with "
          "less aggregate throughput.")


if __name__ == "__main__":
    main()
