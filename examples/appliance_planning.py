"""Appliance planning: choosing a DP x MP split for an OPT-66B service.

The paper's Fig. 11 story as a planning tool: enumerate every feasible
parallelism plan for an 8-device CXL-PNM appliance, evaluate latency,
throughput, energy, and the Table III TCO metrics for each, and compare
against the 8x A100 baseline — then pick a plan under a latency SLO.

Run:  python examples/appliance_planning.py
"""

from repro.appliance import (
    GpuAppliance,
    ParallelismPlan,
    PnmAppliance,
    feasible_plans,
)
from repro.gpu import A100_40G
from repro.llm import OPT_66B
from repro.tco import cost_summary, daily_operation

INPUT_TOKENS, OUTPUT_TOKENS = 64, 1024
LATENCY_SLO_S = 40.0


def main() -> None:
    gpu_appliance = GpuAppliance(A100_40G, num_devices=8)
    pnm_appliance = PnmAppliance(num_devices=8)

    baseline = gpu_appliance.run(OPT_66B, ParallelismPlan(1, 8),
                                 INPUT_TOKENS, OUTPUT_TOKENS)
    print(f"baseline {baseline.name}: latency {baseline.latency_s:.1f} s, "
          f"throughput {baseline.throughput_tokens_per_s:.1f} tok/s")
    gpu_cost = cost_summary(daily_operation(baseline),
                            gpu_appliance.hardware_cost_usd)
    print(f"  {gpu_cost.kwh_per_day:.1f} kWh/day, "
          f"${gpu_cost.operating_cost_usd_per_day:.2f}/day, "
          f"{gpu_cost.co2_kg_per_day:.2f} kg CO2/day\n")

    plans = feasible_plans(OPT_66B, 8,
                           pnm_appliance.device.memory_capacity)
    print(f"{len(plans)} feasible CXL-PNM plans for OPT-66B on 8 devices:")
    candidates = []
    for plan in plans:
        result = pnm_appliance.run(OPT_66B, plan, INPUT_TOKENS,
                                   OUTPUT_TOKENS)
        cost = cost_summary(daily_operation(result),
                            pnm_appliance.hardware_cost_usd)
        candidates.append((plan, result, cost))
        meets = "meets SLO" if result.latency_s <= LATENCY_SLO_S else "   "
        print(f"  {plan.label:<14} latency {result.latency_s:6.1f} s | "
              f"throughput {result.throughput_tokens_per_s:5.1f} tok/s | "
              f"{cost.kwh_per_day:5.1f} kWh/day | "
              f"{cost.cost_efficiency_tokens_per_usd / 1e6:5.2f} Mtok/$ | "
              f"{meets}")

    within_slo = [c for c in candidates if c[1].latency_s <= LATENCY_SLO_S]
    if within_slo:
        plan, result, cost = max(
            within_slo, key=lambda c: c[1].throughput_tokens_per_s)
        print(f"\npick under a {LATENCY_SLO_S:.0f} s SLO: {plan.label} -> "
              f"{result.throughput_tokens_per_s:.1f} tok/s at "
              f"{result.latency_s:.1f} s latency, "
              f"{result.tokens_per_joule / baseline.tokens_per_joule:.1f}x "
              f"the GPU appliance's energy efficiency")


if __name__ == "__main__":
    main()
