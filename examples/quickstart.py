"""Quickstart: the CXL-PNM platform in five minutes.

Shows both faces of the library:

1. **Functional** — load a miniature GPT into the simulated device's CXL
   memory and generate tokens through the full software stack (compiler ->
   driver -> instruction buffer -> accelerator -> interrupt), checking the
   result against the plain-numpy reference transformer.
2. **Modelled performance** — estimate what the 7 nm ASIC target would do
   on OPT-13B with the paper's datacenter workload (64 input tokens, 1024
   output tokens), next to an NVIDIA A100.

Run:  python examples/quickstart.py
"""

from repro.core import CxlPnmPlatform
from repro.gpu import A100_40G
from repro.llm import OPT_13B, ReferenceModel, random_weights, tiny_config
from repro.perf.analytical import GpuPerfModel, InferenceTimer


def functional_demo() -> None:
    print("=== functional: tokens through the simulated device ===")
    platform = CxlPnmPlatform()
    report = platform.report()
    print(f"device: {report.memory_capacity_gb:.0f} GB LPDDR5X, "
          f"{report.peak_bandwidth_tb_s:.2f} TB/s, "
          f"{report.peak_gemm_tflops:.2f} TFLOPS PE array")

    config = tiny_config()
    weights = random_weights(config, seed=42)
    session = platform.session(weights=weights)
    prompt = [11, 42, 7]
    trace = session.generate(prompt, num_tokens=12)
    print(f"prompt {prompt} -> generated {trace.tokens}")
    print(f"device stages: sum {trace.sum_time_s * 1e6:.1f} us, "
          f"gen total {trace.gen_time_s * 1e6:.1f} us "
          f"({trace.instructions} instructions)")

    expected = ReferenceModel(weights).generate(prompt, 12)
    assert trace.tokens == expected, "accelerator diverged from reference!"
    print("matches the numpy reference transformer token-for-token\n")


def performance_demo() -> None:
    print("=== modelled: OPT-13B, 64 in / 1024 out (paper Fig. 10) ===")
    platform = CxlPnmPlatform()
    pnm = platform.estimate(OPT_13B, input_len=64, output_len=1024)
    gpu = InferenceTimer(OPT_13B, GpuPerfModel(A100_40G)).run(64, 1024)
    for result in (gpu, pnm):
        print(f"{result.device_name:>10}: {result.latency_s:6.2f} s, "
              f"{result.tokens_per_s:6.1f} tok/s, "
              f"{result.mean_power_w:6.1f} W, "
              f"{result.tokens_per_joule:.3f} tok/J")
    ratio = pnm.tokens_per_joule / gpu.tokens_per_joule
    print(f"energy efficiency ratio: {ratio:.2f}x (paper: 2.9x)")


if __name__ == "__main__":
    functional_demo()
    performance_demo()
