"""Host-orchestrated tensor parallelism across simulated CXL-PNM devices.

The paper removed DFX's device-to-device router: instead, all devices
share one CXL address space with the host, and *the host* moves data
between them (§V-C).  This example runs a miniature GPT sharded across
four simulated devices — every activation broadcast and partial-result
reduction travels as real CXL.mem line transactions — and verifies the
generated text against the single-device reference, then sizes the same
orchestration for OPT-66B at MP=8 with the performance models (the
Fig. 11 configuration).

Run:  python examples/multi_device_inference.py
"""

from repro.appliance import GpuAppliance, ParallelismPlan, PnmAppliance
from repro.cxl import Source
from repro.gpu import A100_40G
from repro.llm import OPT_66B, ReferenceModel, random_weights, tiny_config
from repro.runtime import TensorParallelSession


def functional_part() -> None:
    print("=== functional: tiny GPT sharded across 4 devices ===")
    config = tiny_config()
    weights = random_weights(config, seed=2024)
    session = TensorParallelSession(weights, degree=4)
    prompt = [17, 76, 3]
    tokens = session.generate(prompt, 8)
    expected = ReferenceModel(weights).generate(prompt, 8)
    assert tokens == expected, "sharded execution diverged!"
    print(f"prompt {prompt} -> {tokens} (matches single-device reference)")
    print(f"host-orchestrated CXL traffic: {session.host_cxl_writes} "
          f"line writes, {session.host_cxl_reads} line reads")
    for i, shard in enumerate(session.devices):
        reads = shard.cxl.counters.reads[Source.HOST]
        writes = shard.cxl.counters.writes[Source.HOST]
        print(f"  device {i}: {shard.driver.launches} launches, "
              f"host reads/writes {reads}/{writes} lines, "
              f"{shard.memory.allocated_bytes / 1e3:.0f} KB shard")
    print()


def modelled_part() -> None:
    print("=== modelled: OPT-66B at MP=8 (the Fig. 11 configuration) ===")
    pnm = PnmAppliance(num_devices=8)
    gpu = GpuAppliance(A100_40G, num_devices=8)
    mp8 = pnm.run(OPT_66B, ParallelismPlan(1, 8), 64, 1024)
    baseline = gpu.run(OPT_66B, ParallelismPlan(1, 8), 64, 1024)
    print(f"8x A100 (TP=8):   {baseline.latency_s:6.1f} s, "
          f"{baseline.throughput_tokens_per_s:5.1f} tok/s, "
          f"{baseline.appliance_power_w:6.0f} W")
    print(f"8x CXL-PNM (MP=8): {mp8.latency_s:6.1f} s, "
          f"{mp8.throughput_tokens_per_s:5.1f} tok/s, "
          f"{mp8.appliance_power_w:6.0f} W")
    print(f"latency delta {100 * (mp8.latency_s / baseline.latency_s - 1):+.1f}% "
          f"(paper: -23%), energy efficiency "
          f"{mp8.tokens_per_joule / baseline.tokens_per_joule:.1f}x "
          f"(paper: 2.9x)")


if __name__ == "__main__":
    functional_part()
    modelled_part()
