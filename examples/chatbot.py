"""A multi-turn chatbot on the simulated CXL-PNM device.

Demonstrates the conversational serving pattern the paper's platform
targets (ChatGPT-style services, §I): the KV context of earlier turns
stays *resident in CXL memory* between turns, so each turn only
processes its new tokens — and the whole thing is checked turn-by-turn
against the numpy reference transformer.

The miniature model speaks in token IDs rather than words (the
reproduction ships no tokenizer), but the mechanics — persistent device
context, per-turn compile/program/launch/interrupt, simulated device
time — are the real platform's.

Run:  python examples/chatbot.py
"""

import numpy as np

from repro.core import CxlPnmPlatform
from repro.llm import KVState, ReferenceModel, random_weights, tiny_config


def reference_turn(model, kv, prompt, num_tokens):
    logits = model.forward(list(prompt), kv)
    tokens = [int(np.argmax(logits))]
    for _ in range(num_tokens - 1):
        logits = model.forward([tokens[-1]], kv)
        tokens.append(int(np.argmax(logits)))
    return tokens


def main() -> None:
    config = tiny_config(max_seq_len=64)
    weights = random_weights(config, seed=123)
    platform = CxlPnmPlatform()
    session = platform.session(weights=weights)
    oracle = ReferenceModel(weights)
    oracle_kv = KVState()

    conversation = [
        ("user greeting", [12, 34, 56], 6),
        ("follow-up question", [78, 90], 5),
        ("clarification", [11, 22, 33, 44], 4),
    ]

    print("device:", f"{platform.report().memory_capacity_gb:.0f} GB "
          "CXL-PNM (simulated)")
    total_instructions = 0
    total_device_time = 0.0
    for i, (label, prompt, num_tokens) in enumerate(conversation):
        if i == 0:
            trace = session.generate(prompt, num_tokens)
        else:
            trace = session.extend(prompt, num_tokens)
        expected = reference_turn(oracle, oracle_kv, prompt, num_tokens)
        status = "ok" if trace.tokens == expected else "MISMATCH"
        total_instructions += trace.instructions
        total_device_time += trace.total_time_s
        print(f"turn {i + 1} ({label}): prompt {prompt} -> "
              f"{trace.tokens}  [{status}]")
        print(f"   KV context now {session.context_len} tokens; "
              f"device time {trace.total_time_s * 1e6:.1f} us")
        assert trace.tokens == expected

    print(f"\nconversation done: {total_instructions} accelerator "
          f"instructions, {session.interrupts_seen} interrupts, "
          f"{total_device_time * 1e6:.1f} us simulated device time")


if __name__ == "__main__":
    main()
